"""JoinService: the §4.3 joining handshake and warm-up.

Joining (§4.3) is a four-step handshake — find a top node of the part,
query its level and measured cost, download its peer list (which covers
any prefix of the joiner's), then multicast the JOIN event.  Warm-up
joins a few levels weaker than the estimate and raises in the background
(through :class:`~repro.core.levelshift.LevelShiftService`).  The
service also answers the assistance queries other nodes' handshakes send
us: ``get-top``, ``level-query``, and ``download``.

Resilience (``config.join_retry_attempts``): a handshake step that times
out restarts the whole handshake after exponential backoff; a *download*
timeout first fails over to alternate top nodes already learned into the
top-node list before burning a retry.  Crash recovery
(``ctx.recovering``): the download is reconciled against the stale cached
peer list instead of replacing it — cached pointers the snapshot does not
confirm are kept but handed to the verification hook (the failure
detector probes them and evicts the truly dead with obituaries).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, List, Optional

from repro.core.admission import pow_cost_seconds, solve_pow, verify_pow
from repro.core.analytic import estimate_join_level
from repro.core.context import NodeContext
from repro.core.events import EventKind
from repro.core.levelshift import LevelShiftService
from repro.core.nodeid import NodeId
from repro.core.pointer import Pointer
from repro.core.runtime import NodeRuntime
from repro.net.message import Message
from repro.obs import metrics as m
from repro.obs.trace import Span


class JoinService:
    """§4.3: handshake + warm-up, and join assistance."""

    def __init__(
        self,
        runtime: NodeRuntime,
        ctx: NodeContext,
        levels: LevelShiftService,
        on_joined: Callable[[], None],
        verify_stale: Optional[Callable[[List[Pointer]], None]] = None,
    ):
        self.runtime = runtime
        self.ctx = ctx
        #: Warm-up raises go through the level-shift commit path.
        self.levels = levels
        #: Coordinator hook: start the protocol loops once state installs.
        self._on_joined = on_joined
        #: Coordinator hook: actively probe reconciled-but-unconfirmed
        #: pointers after a crash-recovery rejoin (FailureDetector.verify).
        self._verify_stale = verify_stale if verify_stale is not None else (lambda _p: None)
        #: Open "join" span while a handshake is in flight (one per node at
        #: a time); the JOIN report traces back to it.
        self._join_span: Optional[Span] = None
        self._join_started: float = 0.0

    # ------------------------------------------------------------------
    # the joining handshake (§4.3)
    # ------------------------------------------------------------------

    def join_via(
        self,
        bootstrap_address: Hashable,
        on_done: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Run the §4.3 joining handshake through ``bootstrap_address``."""
        inner = on_done if on_done is not None else (lambda ok: None)
        ctx = self.ctx
        obs = ctx.obs
        self._join_started = self.runtime.now
        if obs.enabled:
            self._join_span = obs.start(
                "join",
                self.runtime.now,
                bootstrap=str(bootstrap_address),
                recovering=ctx.recovering,
            )

        def done(ok: bool) -> None:
            if ok:
                obs.registry.observe(
                    m.JOIN_LATENCY, self.runtime.now - self._join_started
                )
            else:
                obs.registry.inc(m.JOIN_FAILURES)
            if self._join_span is not None:
                obs.end(
                    self._join_span, self.runtime.now, "ok" if ok else "failed"
                )
                self._join_span = None
            inner(ok)

        self._attempt_join(bootstrap_address, done, attempt=0)

    def _attempt_join(
        self, bootstrap_address: Hashable, done: Callable[[bool], None], attempt: int
    ) -> None:
        ctx = self.ctx
        fail = self._make_fail(bootstrap_address, done, attempt)
        # Admission proof-of-work (DESIGN §16): grind the identity-bound
        # token and pay its modeled solve time as a delay before step 1.
        # The search restarts at nonce 0 each attempt (deterministic:
        # same identity, same token), so a retried handshake pays the
        # grinding time again — retries are not free accusations.
        payload: Any = ctx.node_id
        delay = 0.0
        if ctx.config.join_pow_bits > 0:
            nonce, attempts = solve_pow(ctx.node_id.value, ctx.config.join_pow_bits)
            payload = (ctx.node_id, nonce)
            delay = pow_cost_seconds(attempts, ctx.config.join_pow_hash_rate)
            ctx.obs.registry.observe(m.JOIN_POW_COST, delay)
        if delay > 0:
            self.runtime.schedule(
                delay, self._send_get_top, bootstrap_address, payload, done, fail
            )
        else:
            self._send_get_top(bootstrap_address, payload, done, fail)

    def _send_get_top(
        self,
        bootstrap_address: Hashable,
        payload: Any,
        done: Callable[[bool], None],
        fail: Callable[[], None],
    ) -> None:
        ctx = self.ctx
        # Step 1: find a top node of our part.
        msg = Message(
            ctx.address,
            bootstrap_address,
            "get-top",
            payload=payload,
            size_bits=ctx.config.ack_bits,
            trace=self._handshake_trace(),
        )
        self.runtime.request(
            msg,
            timeout=ctx.config.report_timeout,
            on_reply=lambda reply: self._join_got_top(reply.payload, done, fail),
            on_timeout=fail,
        )

    def _handshake_trace(self):
        """Span context riding handshake messages (``None`` when obs off)."""
        return self._join_span.ref() if self._join_span is not None else None

    def _make_fail(
        self, bootstrap_address: Hashable, done: Callable[[bool], None], attempt: int
    ) -> Callable[[], None]:
        """A step-failure continuation: retry the whole handshake with
        exponential backoff until ``join_retry_attempts`` is exhausted."""
        ctx = self.ctx

        def fail() -> None:
            if attempt >= ctx.config.join_retry_attempts:
                done(False)
                return
            delay = ctx.config.report_timeout * (
                ctx.config.join_retry_backoff**attempt
            )
            self.runtime.schedule(
                delay, self._attempt_join, bootstrap_address, done, attempt + 1
            )

        return fail

    def _join_got_top(
        self,
        top_ptr: Optional[Pointer],
        done: Callable[[bool], None],
        fail: Callable[[], None],
    ) -> None:
        ctx = self.ctx
        if top_ptr is None:
            fail()
            return
        # Step 2: ask the top node for its level and measured cost.
        msg = Message(
            ctx.address,
            top_ptr.address,
            "level-query",
            payload=ctx.node_id,
            size_bits=ctx.config.ack_bits,
            trace=self._handshake_trace(),
        )
        self.runtime.request(
            msg,
            timeout=ctx.config.report_timeout,
            on_reply=lambda reply: self._join_got_level(
                top_ptr, reply.payload, done, fail
            ),
            on_timeout=fail,
        )

    def _join_got_level(
        self,
        top_ptr: Pointer,
        info: tuple,
        done: Callable[[bool], None],
        fail: Callable[[], None],
    ) -> None:
        ctx = self.ctx
        top_level, top_cost, top_pointers = info
        target = estimate_join_level(top_level, top_cost, ctx.threshold_bps)
        # A joiner cannot start *stronger* than the top node that serves
        # its download — the downloaded list would not cover the wider
        # prefix (in a split system that would silently merge parts with a
        # half-empty list).  Clamp to the part's level; the autonomic
        # controller may raise (and properly download) later.
        target = min(max(target, top_level), ctx.node_id.bits)
        level = min(target + ctx.config.warmup_extra_levels, ctx.node_id.bits)
        ctx.top_list.merge(list(top_pointers) + [top_ptr])
        self._request_download(top_ptr, level, target, top_level, done, fail, tried=[])

    def _request_download(
        self,
        top_ptr: Pointer,
        level: int,
        target_level: int,
        top_level: int,
        done: Callable[[bool], None],
        fail: Callable[[], None],
        tried: List[Hashable],
    ) -> None:
        # Step 3: download the peer list (and top-node list) from the top
        # node, whose list covers any prefix of ours.
        ctx = self.ctx
        tried = tried + [top_ptr.address]
        msg = Message(
            ctx.address,
            top_ptr.address,
            "download",
            payload=(ctx.node_id, level),
            size_bits=ctx.config.ack_bits,
            trace=self._handshake_trace(),
        )
        self.runtime.request(
            msg,
            timeout=ctx.config.report_timeout,
            on_reply=lambda reply: self._join_got_download(
                level, target_level, top_level, reply.payload, done
            ),
            on_timeout=lambda: self._download_failover(
                level, target_level, top_level, done, fail, tried
            ),
        )

    def _download_failover(
        self,
        level: int,
        target_level: int,
        top_level: int,
        done: Callable[[bool], None],
        fail: Callable[[], None],
        tried: List[Hashable],
    ) -> None:
        """A download timed out: fail over to an alternate top node from
        the top-node list (learned in steps 1-2) before burning a full
        handshake retry."""
        ctx = self.ctx
        alternates = [p for p in ctx.top_list.pointers() if p.address not in tried]
        if not alternates:
            fail()
            return
        alt = alternates[int(ctx.rng.integers(0, len(alternates)))]
        self._request_download(alt, level, target_level, top_level, done, fail, tried)

    def _join_got_download(
        self,
        level: int,
        target_level: int,
        top_level: int,
        payload: tuple,
        done: Callable[[bool], None],
    ) -> None:
        ctx = self.ctx
        pointers, top_pointers = payload
        recovering = ctx.recovering
        ctx.recovering = False
        # Crash recovery: the cached (pre-crash) peer list is reconciled
        # against the snapshot, not discarded — entries the snapshot also
        # carries are refreshed below; the rest are kept but must be
        # verified (they may have died while we were down).
        cached = {p.node_id.value: p for p in ctx.peer_list} if recovering else {}
        ctx.level = level
        ctx.peer_list.retarget(level)
        ctx.peer_list.add(ctx.self_pointer())
        downloaded = set()
        for p in pointers:
            if p.node_id.value != ctx.node_id.value and p.node_id.shares_prefix(
                ctx.node_id, level
            ):
                downloaded.add(p.node_id.value)
                ctx.peer_list.add(p.copy(last_refresh=self.runtime.now))
        ctx.top_list.merge(list(top_pointers))
        ctx.is_top = level <= top_level
        ctx.alive = True
        self._on_joined()
        # Step 4: multicast the joining event around the audience set.
        ctx.report_event(ctx.make_event(EventKind.JOIN), trace=self._handshake_trace())
        done(True)
        if recovering:
            unconfirmed = [
                ctx.peer_list.get(p.node_id)
                for value, p in cached.items()
                if value not in downloaded and value != ctx.node_id.value
            ]
            # retarget() may have dropped out-of-prefix cache entries.
            self._verify_stale([p for p in unconfirmed if p is not None])
        # Warm-up (§4.3): raise to the estimated level in the background.
        if level > target_level:
            self.runtime.schedule(0.0, self._warmup_raise, target_level)

    def _warmup_raise(self, target_level: int) -> None:
        ctx = self.ctx
        if not ctx.alive or ctx.level <= target_level:
            return
        self.levels.initiate_raise(ctx.level - 1)
        # Keep raising until the warm-up target is reached.
        self.runtime.schedule(
            ctx.config.report_timeout, self._warmup_raise, target_level
        )

    # ------------------------------------------------------------------
    # join assistance (the serving side of the handshake)
    # ------------------------------------------------------------------

    def on_get_top(self, msg: Message) -> None:
        ctx = self.ctx
        joiner_id: NodeId
        nonce: Optional[int] = None
        if isinstance(msg.payload, tuple):
            joiner_id, nonce = msg.payload
        else:
            joiner_id = msg.payload
        # Admission gates (DESIGN §16).  Both drop silently: the joiner's
        # §4.3 backoff-and-retry is the designed reaction, and an error
        # reply would hand an attacker a free oracle.
        if ctx.config.join_pow_bits > 0 and (
            nonce is None
            or not verify_pow(joiner_id.value, nonce, ctx.config.join_pow_bits)
        ):
            ctx.obs.registry.inc(m.JOIN_POW_REJECTED)
            return
        if ctx.config.join_throttle_interval > 0:
            if (
                self.runtime.now - ctx.last_join_served
                < ctx.config.join_throttle_interval
            ):
                ctx.obs.registry.inc(m.JOIN_THROTTLED)
                return
            ctx.last_join_served = self.runtime.now
        ctx.stats.joins_assisted += 1
        ctx.obs.registry.inc(m.JOIN_ASSISTS)
        if ctx.obs.enabled:
            ctx.obs.instant(
                "join.serve.get-top",
                self.runtime.now,
                parent=msg.trace,
                joiner=str(msg.src),
            )
        same_part = joiner_id.shares_prefix(ctx.node_id, ctx.part_level())
        if same_part:
            if ctx.is_top:
                self.runtime.send(
                    msg.make_reply(
                        "top-ptr",
                        payload=ctx.self_pointer(),
                        size_bits=ctx.config.pointer_bits,
                    )
                )
                return
            tops = ctx.top_list.pointers()
            payload = tops[int(ctx.rng.integers(0, len(tops)))] if tops else None
            self.runtime.send(
                msg.make_reply(
                    "top-ptr", payload=payload, size_bits=ctx.config.pointer_bits
                )
            )
            return
        # Cross-part (§4.4): a top node consults its cross-part list; a
        # plain node relays the question to a top node of its own part.
        if ctx.is_top:
            candidates = ctx.cross_parts.find_for_id(joiner_id)
            payload = (
                candidates[int(ctx.rng.integers(0, len(candidates)))]
                if candidates
                else None
            )
            self.runtime.send(
                msg.make_reply(
                    "top-ptr", payload=payload, size_bits=ctx.config.pointer_bits
                )
            )
            return
        tops = ctx.top_list.pointers()
        if not tops:
            self.runtime.send(
                msg.make_reply("top-ptr", payload=None, size_bits=ctx.config.ack_bits)
            )
            return
        relay_to = tops[int(ctx.rng.integers(0, len(tops)))]
        # Forward the original payload (id + any admission token): the
        # relay target re-verifies the proof-of-work for itself.
        inner = Message(
            ctx.address,
            relay_to.address,
            "get-top",
            payload=msg.payload,
            size_bits=ctx.config.ack_bits,
        )
        self.runtime.request(
            inner,
            timeout=ctx.config.report_timeout,
            on_reply=lambda reply: self.runtime.send(
                msg.make_reply(
                    "top-ptr", payload=reply.payload, size_bits=ctx.config.pointer_bits
                )
            ),
            on_timeout=lambda: self.runtime.send(
                msg.make_reply("top-ptr", payload=None, size_bits=ctx.config.ack_bits)
            ),
        )

    def on_level_query(self, msg: Message) -> None:
        ctx = self.ctx
        if ctx.obs.enabled:
            ctx.obs.instant(
                "join.serve.level-query",
                self.runtime.now,
                parent=msg.trace,
                joiner=str(msg.src),
            )
        piggyback = [
            p.copy() for p in ctx.top_list.pointers()[: ctx.config.top_list_size - 1]
        ]
        if ctx.is_top:
            piggyback = [
                p.copy()
                for p in ctx.peer_list.group_members()
                if p.node_id.value != ctx.node_id.value
            ][: ctx.config.top_list_size - 1]
        payload = (
            ctx.level,
            ctx.endpoint.ewma_in.rate(self.runtime.now),
            piggyback,
        )
        self.runtime.send(
            msg.make_reply(
                "level-info",
                payload=payload,
                size_bits=ctx.config.ack_bits
                + len(piggyback) * ctx.config.pointer_bits,
            )
        )

    def on_download(self, msg: Message) -> None:
        ctx = self.ctx
        requester_id, prefix_len = msg.payload
        ctx.stats.downloads_served += 1
        ctx.obs.registry.inc(m.DOWNLOADS_SERVED)
        if ctx.obs.enabled:
            ctx.obs.instant(
                "join.serve.download",
                self.runtime.now,
                parent=msg.trace,
                requester=str(msg.src),
                prefix_len=prefix_len,
            )
        if ctx.config.download_grace > 0:
            # Events we apply in the grace window are copied to the
            # requester — multicasts concurrent with the download would
            # otherwise miss it (it is in nobody's audience yet).
            ctx.recent_downloads.append((msg.src, self.runtime.now))
        matching = [
            p.copy()
            for p in ctx.peer_list
            if p.node_id.shares_prefix(requester_id, prefix_len)
        ]
        tops = [p.copy() for p in ctx.top_list.pointers()]
        if ctx.is_top:
            tops = [
                p.copy()
                for p in ctx.peer_list.group_members()
                if p.node_id.value != ctx.node_id.value
            ][: ctx.config.top_list_size - 1] + [ctx.self_pointer()]
        self.runtime.send(
            msg.make_reply(
                "download-data",
                payload=(matching, tops),
                size_bits=max(1, len(matching) + len(tops)) * ctx.config.pointer_bits,
            )
        )
