"""Autonomic level control (§2, §4.3).

Each node has a user-set upper bandwidth threshold ``W`` and measures its
actual maintenance cost ``w`` (EWMA of input bandwidth).  The controller:

* **lowers** the level (l -> l+1, peer list halves) when ``w > W`` —
  the node can no longer afford its level;
* **raises** the level (l -> l-1, peer list doubles) when
  ``w < raise_fraction * W`` (the paper's worked example uses 1/2: a
  modem node at 5 kbps raises when cost drops below 2.5 kbps) — the
  environment turned stable and the node can collect more.

Raising requires first downloading the newly-covered pointers from a
*stronger* node (§4.3); lowering just evicts out-of-prefix pointers.
Either way the node reports the level-change event to a top node, which
multicasts it around the audience set.

The controller also enforces a hold-down (one shift per check interval,
and never immediately reversing) so that measurement noise does not make
levels flap — the hysteresis between ``raise_fraction * W`` and ``W``
provides the static margin.
"""

from __future__ import annotations

import enum
from repro.core.config import ProtocolConfig


class LevelDecision(enum.Enum):
    HOLD = "hold"
    RAISE = "raise"  # l -> l-1, bigger peer list (higher level)
    LOWER = "lower"  # l -> l+1, smaller peer list (lower level)


class LevelController:
    """Pure decision logic; the node executes the shifts."""

    def __init__(self, config: ProtocolConfig, threshold_bps: float):
        if threshold_bps <= 0:
            raise ValueError("threshold must be positive")
        self.config = config
        self.threshold_bps = float(threshold_bps)
        self._last_decision = LevelDecision.HOLD
        self.raises = 0
        self.lowers = 0

    def decide(self, level: int, measured_bps: float) -> LevelDecision:
        """One control step.  ``measured_bps`` is the EWMA input cost."""
        if measured_bps < 0:
            raise ValueError("measured_bps must be >= 0")
        decision = LevelDecision.HOLD
        if measured_bps > self.threshold_bps:
            if level < 10_000:  # no practical upper bound; guard overflow
                decision = LevelDecision.LOWER
        elif measured_bps < self.config.raise_fraction * self.threshold_bps:
            if level > 0:
                decision = LevelDecision.RAISE
        # Anti-flap: never immediately reverse the previous shift.
        if (
            decision is LevelDecision.RAISE
            and self._last_decision is LevelDecision.LOWER
        ) or (
            decision is LevelDecision.LOWER
            and self._last_decision is LevelDecision.RAISE
        ):
            self._last_decision = LevelDecision.HOLD
            return LevelDecision.HOLD
        self._last_decision = decision
        if decision is LevelDecision.RAISE:
            self.raises += 1
        elif decision is LevelDecision.LOWER:
            self.lowers += 1
        return decision

    def set_threshold(self, threshold_bps: float) -> None:
        """The user re-tunes the knob at runtime (§4.3: level adjustment
        can be *"due to ... the upper bandwidth threshold set by the
        user"*)."""
        if threshold_bps <= 0:
            raise ValueError("threshold must be positive")
        self.threshold_bps = float(threshold_bps)
