"""SHA-256 proof-of-work join admission (DESIGN §16).

"On the Cost of Participating in a Peer-to-Peer Network" (PAPERS.md)
motivates pricing admission: a Sybil flood is only cheap if minting an
identity is free.  Here a joiner must exhibit a nonce such that
``sha256("{node_id_value:x}:{nonce}")`` starts with
``config.join_pow_bits`` zero bits before any server will answer its
§4.3 get-top.  The work is bound to the identity — solving for one
nodeId says nothing about the next — so an attacker pays the expected
``2**bits`` hash attempts *per identity minted*, while an honest joiner
pays it once.

The hashing is real (the token a server verifies is a genuine SHA-256
preimage search), but its *time* cost inside the simulator is modeled:
``attempts / config.join_pow_hash_rate`` simulated seconds are paid as a
delay before the get-top is sent.  Verification is a single hash, so the
asymmetry matches the real deployment: joiners grind, servers check.

Everything here is deterministic — the nonce search starts at 0 and
walks up, so the same identity always yields the same token and chaos
replays stay byte-identical.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

#: Hard ceiling on the difficulty a solver will attempt: at 32 bits the
#: expected search is ~4e9 hashes, far beyond any sane simulation budget.
MAX_POW_BITS = 32


def _digest_value(node_id_value: int, nonce: int) -> int:
    data = f"{node_id_value:x}:{nonce:d}".encode("ascii")
    return int.from_bytes(hashlib.sha256(data).digest(), "big")


def verify_pow(node_id_value: int, nonce: int, bits: int) -> bool:
    """One hash: does ``nonce`` prove ``bits`` leading zero bits of work
    bound to ``node_id_value``?"""
    if bits <= 0:
        return True
    if not 0 < bits <= MAX_POW_BITS:
        raise ValueError(f"pow bits must be in (0, {MAX_POW_BITS}]")
    if not isinstance(nonce, int) or isinstance(nonce, bool) or nonce < 0:
        return False
    return _digest_value(node_id_value, nonce) >> (256 - bits) == 0


def solve_pow(node_id_value: int, bits: int) -> Tuple[int, int]:
    """Grind nonces from 0 until the digest shows ``bits`` leading zero
    bits.  Returns ``(nonce, attempts)`` where ``attempts = nonce + 1``
    is the number of hashes computed (the quantity the cost model
    charges).  Deterministic: same identity, same token."""
    if bits <= 0:
        return 0, 0
    if bits > MAX_POW_BITS:
        raise ValueError(f"pow bits must be in (0, {MAX_POW_BITS}]")
    nonce = 0
    shift = 256 - bits
    while _digest_value(node_id_value, nonce) >> shift != 0:
        nonce += 1
    return nonce, nonce + 1


def pow_cost_seconds(attempts: int, hash_rate: float) -> float:
    """The modeled wall time of ``attempts`` hashes at ``hash_rate``
    hashes/second — the simulated delay a joiner pays before get-top."""
    if hash_rate <= 0:
        raise ValueError("hash_rate must be positive")
    return attempts / hash_rate


def expected_attempts(bits: int) -> float:
    """The admission cost curve: E[hashes] to mint one identity."""
    return float(2**bits) if bits > 0 else 0.0
