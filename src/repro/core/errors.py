"""Exception hierarchy for the PeerWindow core."""

from __future__ import annotations

__all__ = [
    "PeerWindowError",
    "ConfigError",
    "NodeIdError",
    "MembershipError",
    "JoinError",
    "NotAliveError",
]


class PeerWindowError(Exception):
    """Base class for all PeerWindow protocol errors."""


class ConfigError(PeerWindowError, ValueError):
    """Invalid protocol configuration."""


class NodeIdError(PeerWindowError, ValueError):
    """Malformed node identifier or bit index."""


class MembershipError(PeerWindowError):
    """Peer-list/pointer bookkeeping violation (duplicate add, missing
    remove target, prefix mismatch)."""


class JoinError(PeerWindowError):
    """The joining handshake could not complete (no bootstrap, no
    reachable top node, download failure)."""


class NotAliveError(PeerWindowError):
    """Operation on a node that has left or crashed."""
