"""Protocol configuration.

All tunables the paper specifies (and the knobs our ablations sweep) live
in one frozen dataclass so that an experiment's parameterization is a
single value that can be logged and compared.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class ProtocolConfig:
    """PeerWindow parameters.

    Attributes
    ----------
    id_bits:
        NodeId width.  The paper uses 128; unit tests use small widths so
        worked examples (figure 1 uses 4-bit ids) stay legible.
    top_list_size:
        ``t``, the top-node list length.  Paper: *"Commonly we set t = 8."*
    probe_interval:
        Seconds between successor heartbeats in the failure-detection ring
        (§4.1).  The introduction's cost discussion assumes 30 s probes.
    probe_timeout:
        Seconds to wait for a probe ack before counting a miss.
    probe_misses_to_fail:
        Consecutive probe misses that declare the successor dead.
    event_message_bits / heartbeat_bits / ack_bits / pointer_bits:
        Wire sizes; §5.1 sets event messages to 1,000 bits, the intro uses
        500-bit heartbeats.
    multicast_processing_delay:
        §5.1: *"every medium node delays the message for 1 second that is
        spent on receiving, calculating and sending."*
    multicast_attempts:
        §4.2: *"When a message gets no response after three continuous
        attempts, the corresponding pointer will be removed ..."*
    multicast_redundancy:
        The §2 cost model's ``r``: how many targets each relay contacts
        per bit position.  1 = the §4.2 tree (each audience member
        receives once); higher values trade bandwidth for robustness to
        relay failures mid-dissemination (the "various multicast
        protocols ... with different efficiency, reliability, and
        redundancy" knob).
    multicast_ack_timeout:
        Seconds to wait for each multicast ack attempt.
    refresh_multiple / expiry_multiple:
        §4.6: refresh own state every ``2*LT_l``; expire an m-level pointer
        after ``3*LT_m`` without refresh.
    level_check_interval:
        Autonomic controller cadence (seconds).
    raise_fraction:
        Raise the level (grow the list, l -> l-1) when measured cost drops
        below ``raise_fraction * threshold`` (§2's worked example uses 1/2).
    report_timeout:
        Seconds to wait for a report ack before trying another top node.
    warmup_extra_levels:
        §4.3 warm-up: join this many levels weaker than the estimate, then
        raise after the background download.  0 disables warm-up.
    download_grace:
        Seconds after serving a §4.3 peer-list download during which the
        server forwards every event it applies to the requester.  A joiner
        is in nobody's audience until its JOIN multicast lands, so an
        event whose dissemination completes inside that window would
        otherwise be permanently missed (a stale download).  0 disables
        the forwarding (DESIGN.md §8).
    timer_jitter:
        Fraction of each probe/refresh period drawn as uniform jitter from
        the node's seeded stream (see :meth:`NodeContext.jittered`).  At
        scale this breaks the lockstep synchronization of thousands of
        identical timers; 0 (the default) draws nothing, keeping existing
        deterministic runs unchanged.
    join_retry_attempts:
        How many times a failed §4.3 joining handshake is retried before
        ``join_via`` reports failure.  Each retry restarts the handshake
        from the bootstrap after an exponentially backed-off delay
        (``report_timeout * join_retry_backoff**attempt``); a download
        timeout additionally tries alternate top nodes from the top-node
        list before burning a retry.  0 (the default) keeps the original
        single-shot behavior.
    join_retry_backoff:
        Exponential backoff multiplier between join retries (>= 1).
    obituary_verify:
        Verify-before-believe (DESIGN §16): when True, a LEAVE event about
        a third party the node still holds is confirmed by probing the
        reported-dead node (``probe_misses_to_fail`` probes of
        ``probe_timeout`` each) before it may evict anything.  A reply
        refutes the obituary and strikes the accuser; False (the default)
        keeps the paper's trust-every-message behavior.
    quarantine_strikes:
        Refuted obituaries tolerated from one accuser before its future
        obituaries are dropped unheard (only meaningful with
        ``obituary_verify``; must stay >= 1).
    join_pow_bits:
        SHA-256 proof-of-work admission: leading zero bits a joiner's
        ``sha256("{id:x}:{nonce}")`` digest must show before a get-top is
        served.  Expected cost is ``2**bits`` hash attempts per identity,
        so Sybil floods pay linearly in identities minted.  0 (default)
        disables admission work.
    join_pow_hash_rate:
        Modeled hashes/second a joiner can compute; the solve cost
        ``attempts / hash_rate`` is paid as simulated delay before the
        get-top is sent.
    join_throttle_interval:
        Per-server join-rate throttle: minimum seconds between get-top
        requests one node will serve.  Excess requests are silently
        dropped and the joiner's §4.3 backoff-and-retry absorbs the
        wait.  0 (default) disables throttling.
    claim_audit_interval:
        Claim-auditing cadence (seconds): maintenance periodically
        cross-checks the strongest level claim it holds by downloading
        the claimant's peer list at its claimed level and demoting liars
        whose returned list does not evidence the claimed coverage.
        0 (default) disables auditing.
    claim_audit_margin:
        How much larger (×) a stronger node's returned list must be than
        the auditor's own before the size check passes (> 1).
    """

    id_bits: int = 128
    top_list_size: int = 8
    probe_interval: float = 30.0
    probe_timeout: float = 5.0
    probe_misses_to_fail: int = 1
    event_message_bits: int = 1000
    heartbeat_bits: int = 500
    ack_bits: int = 100
    pointer_bits: int = 500
    multicast_processing_delay: float = 1.0
    multicast_attempts: int = 3
    multicast_ack_timeout: float = 5.0
    multicast_redundancy: int = 1
    refresh_multiple: float = 2.0
    expiry_multiple: float = 3.0
    level_check_interval: float = 60.0
    raise_fraction: float = 0.5
    report_timeout: float = 10.0
    warmup_extra_levels: int = 0
    download_grace: float = 30.0
    timer_jitter: float = 0.0
    join_retry_attempts: int = 0
    join_retry_backoff: float = 2.0
    obituary_verify: bool = False
    quarantine_strikes: int = 3
    join_pow_bits: int = 0
    join_pow_hash_rate: float = 1000.0
    join_throttle_interval: float = 0.0
    claim_audit_interval: float = 0.0
    claim_audit_margin: float = 1.5

    def __post_init__(self) -> None:
        if not 1 <= self.id_bits <= 256:
            raise ConfigError("id_bits must be in [1, 256]")
        if self.top_list_size < 1:
            raise ConfigError("top_list_size must be >= 1")
        if self.probe_interval <= 0 or self.probe_timeout <= 0:
            raise ConfigError("probe intervals must be positive")
        if self.probe_misses_to_fail < 1:
            raise ConfigError("probe_misses_to_fail must be >= 1")
        if min(
            self.event_message_bits,
            self.heartbeat_bits,
            self.ack_bits,
            self.pointer_bits,
        ) < 1:
            raise ConfigError("message sizes must be >= 1 bit")
        if self.multicast_processing_delay < 0:
            raise ConfigError("multicast_processing_delay must be >= 0")
        if self.multicast_attempts < 1:
            raise ConfigError("multicast_attempts must be >= 1")
        if self.multicast_redundancy < 1:
            raise ConfigError("multicast_redundancy must be >= 1")
        if self.multicast_ack_timeout <= 0 or self.report_timeout <= 0:
            raise ConfigError("timeouts must be positive")
        if self.refresh_multiple <= 0 or self.expiry_multiple <= 0:
            raise ConfigError("refresh/expiry multiples must be positive")
        if self.expiry_multiple <= self.refresh_multiple:
            raise ConfigError(
                "expiry_multiple must exceed refresh_multiple or live "
                "pointers would expire between refreshes"
            )
        if self.level_check_interval <= 0:
            raise ConfigError("level_check_interval must be positive")
        if not 0.0 < self.raise_fraction < 1.0:
            raise ConfigError("raise_fraction must be in (0, 1)")
        if self.warmup_extra_levels < 0:
            raise ConfigError("warmup_extra_levels must be >= 0")
        if self.download_grace < 0:
            raise ConfigError("download_grace must be >= 0")
        if self.join_retry_attempts < 0:
            raise ConfigError("join_retry_attempts must be >= 0")
        if self.join_retry_backoff < 1.0:
            raise ConfigError("join_retry_backoff must be >= 1")
        if not 0.0 <= self.timer_jitter < 1.0:
            raise ConfigError("timer_jitter must be in [0, 1)")
        if self.quarantine_strikes < 1:
            raise ConfigError("quarantine_strikes must be >= 1")
        if not 0 <= self.join_pow_bits <= 32:
            raise ConfigError("join_pow_bits must be in [0, 32]")
        if self.join_pow_hash_rate <= 0:
            raise ConfigError("join_pow_hash_rate must be positive")
        if self.join_throttle_interval < 0:
            raise ConfigError("join_throttle_interval must be >= 0")
        if self.claim_audit_interval < 0:
            raise ConfigError("claim_audit_interval must be >= 0")
        if self.claim_audit_margin <= 1.0:
            raise ConfigError("claim_audit_margin must exceed 1")

    def with_(self, **kwargs: Any) -> "ProtocolConfig":
        """A modified copy (convenience wrapper over dataclasses.replace)."""
        return replace(self, **kwargs)

    def describe(self) -> Dict[str, Any]:
        from dataclasses import asdict

        return asdict(self)


#: The configuration used by the paper's common experiment (§5.1).
PAPER_COMMON_CONFIG = ProtocolConfig()
