"""The PeerWindow node: a thin coordinator over the protocol services.

One :class:`PeerWindowNode` is the composition point of the §4 protocol
machinery, each concern implemented by a dedicated service sharing one
:class:`~repro.core.context.NodeContext`:

* :class:`~repro.core.join.JoinService` — the §4.3 joining handshake,
  warm-up, and join assistance;
* :class:`~repro.core.levelshift.LevelShiftService` — the autonomic level
  controller's commit paths (lower/raise, part split/merge);
* :class:`~repro.core.failure.FailureDetector` — the §4.1 ring probe loop;
* :class:`~repro.core.dissemination.MulticastService` — the §4.2 tree
  multicast with acks/retries/redirects plus the §4.5 report path;
* :class:`~repro.core.maintenance.MaintenanceService` — the §4.6
  refresh/expiry loops.

The coordinator itself owns only lifecycle (bootstrap / install / join /
leave / crash), message dispatch, and the public accessors the harness
and tests use.  It runs against a :class:`~repro.core.runtime.NodeRuntime`
— pass ``runtime=`` directly, or the classic ``sim=``/``transport=`` pair
which is wrapped in a :class:`~repro.core.runtime.SimRuntime`.

Part handling (§4.4): each node tracks whether it believes itself a *top
node* (no stronger node in its part).  Top nodes answer reports with
multicasts and keep a :class:`~repro.core.topnodes.CrossPartTopList` for
other parts.  Part *merging* (a top node raising above its part's level)
uses a bridge subscription — see DESIGN.md §8; the paper leaves this path
unspecified.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.context import NodeContext, NodeStats
from repro.core.dissemination import MulticastService
from repro.core.errors import NotAliveError
from repro.core.events import EventKind, EventRecord
from repro.core.failure import FailureDetector
from repro.core.join import JoinService
from repro.core.levelshift import LevelShiftService
from repro.core.maintenance import MaintenanceService
from repro.core.nodeid import NodeId
from repro.core.pointer import Pointer
from repro.core.runtime import NodeRuntime, SimRuntime
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.engine import Simulator

__all__ = ["PeerWindowNode", "NodeStats"]


class PeerWindowNode:
    """A live protocol participant.

    Construction wires the node to its runtime but does **not** join it:
    call :meth:`bootstrap_first` for the very first node of a system, or
    :meth:`join_via` with a bootstrap address for everyone else.  The
    :class:`~repro.core.protocol.PeerWindowNetwork` harness drives both.
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        transport: Optional[Transport] = None,
        config: Optional[ProtocolConfig] = None,
        node_id: Optional[NodeId] = None,
        address: Hashable = None,
        threshold_bps: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        attached_info: Any = None,
        on_left: Optional[Callable[["PeerWindowNode"], None]] = None,
        runtime: Optional[NodeRuntime] = None,
        obs: Any = None,
    ):
        if runtime is None:
            if sim is None or transport is None:
                raise ValueError(
                    "PeerWindowNode needs either runtime= or both sim= and transport="
                )
            runtime = SimRuntime(sim, transport)
        if config is None or node_id is None or rng is None:
            raise ValueError("config, node_id and rng are required")
        self.runtime = runtime
        #: Kept for the sequential-harness/test surface; ``None`` when the
        #: runtime does not expose them (it always does for SimRuntime).
        self.sim = getattr(runtime, "sim", None)
        self.transport = getattr(runtime, "transport", None)
        self._on_left = on_left

        self.ctx = NodeContext(
            runtime,
            config,
            node_id,
            address,
            threshold_bps,
            rng,
            attached_info=attached_info,
            obs=obs,
        )
        self.dissemination = MulticastService(runtime, self.ctx)
        # The report path is the capability every other service needs;
        # wire it into the shared context before anything can fire.
        self.ctx.report_event = self.dissemination.report_event
        self.failure = FailureDetector(runtime, self.ctx)
        # Verify-before-believe (DESIGN §16): dissemination asks the
        # failure detector to confirm third-party obituaries by probing.
        self.ctx.confirm_dead = self.failure.confirm_dead
        self.levels = LevelShiftService(runtime, self.ctx)
        self.join = JoinService(
            runtime,
            self.ctx,
            self.levels,
            on_joined=self._start_loops,
            verify_stale=self.failure.verify,
        )
        self.maintenance = MaintenanceService(runtime, self.ctx)
        self.ctx.endpoint = runtime.register(address, self._on_message)

    # ------------------------------------------------------------------
    # context accessors (the pre-split public surface)
    # ------------------------------------------------------------------

    @property
    def config(self) -> ProtocolConfig:
        return self.ctx.config

    @property
    def node_id(self) -> NodeId:
        return self.ctx.node_id

    @property
    def address(self) -> Hashable:
        return self.ctx.address

    @property
    def threshold_bps(self) -> float:
        return self.ctx.threshold_bps

    @threshold_bps.setter
    def threshold_bps(self, value: float) -> None:
        self.ctx.threshold_bps = float(value)

    @property
    def rng(self) -> np.random.Generator:
        return self.ctx.rng

    @property
    def level(self) -> int:
        return self.ctx.level

    @level.setter
    def level(self, value: int) -> None:
        self.ctx.level = value

    @property
    def alive(self) -> bool:
        return self.ctx.alive

    @alive.setter
    def alive(self, value: bool) -> None:
        self.ctx.alive = value

    @property
    def is_top(self) -> bool:
        return self.ctx.is_top

    @is_top.setter
    def is_top(self, value: bool) -> None:
        self.ctx.is_top = value

    @property
    def attached_info(self) -> Any:
        return self.ctx.attached_info

    @attached_info.setter
    def attached_info(self, value: Any) -> None:
        self.ctx.attached_info = value

    @property
    def peer_list(self):
        return self.ctx.peer_list

    @property
    def top_list(self):
        return self.ctx.top_list

    @property
    def cross_parts(self):
        return self.ctx.cross_parts

    @property
    def estimator(self):
        return self.ctx.estimator

    @property
    def refresh_mgr(self):
        return self.ctx.refresh_mgr

    @property
    def controller(self):
        return self.ctx.controller

    @property
    def stats(self) -> NodeStats:
        return self.ctx.stats

    @property
    def endpoint(self):
        return self.ctx.endpoint

    @property
    def bridge_subscribers(self) -> Dict[int, Pointer]:
        return self.ctx.bridge_subscribers

    @property
    def forwarder(self):
        return self.dissemination.forwarder

    @property
    def eigenstring(self) -> str:
        return self.ctx.eigenstring

    def self_pointer(self) -> Pointer:
        return self.ctx.self_pointer()

    # Pre-split private names a few whitebox tests poke at.

    @property
    def _seq(self) -> int:
        return self.ctx.seq

    @_seq.setter
    def _seq(self, value: int) -> None:
        self.ctx.seq = value

    @property
    def _raising(self) -> bool:
        return self.ctx.raising

    @_raising.setter
    def _raising(self, value: bool) -> None:
        self.ctx.raising = value

    @property
    def _seen_events(self) -> Dict[int, int]:
        return self.ctx.seen_events

    def _make_event(self, kind: EventKind) -> EventRecord:
        return self.ctx.make_event(kind)

    def _part_level(self) -> int:
        return self.ctx.part_level()

    def _commit_lower(self) -> None:
        self.levels.commit_lower()

    def _initiate_raise(self, new_level: int) -> None:
        self.levels.initiate_raise(new_level)

    def _raise_source(self, new_level: int) -> Optional[Pointer]:
        return self.levels._raise_source(new_level)

    def report_event(self, event: EventRecord, _attempt: int = 0, trace=None) -> None:
        self.dissemination.report_event(event, _attempt=_attempt, trace=trace)

    # ------------------------------------------------------------------
    # lifecycle: bootstrap / join / leave / crash
    # ------------------------------------------------------------------

    def bootstrap_first(self, level: int = 0) -> None:
        """Become the first node of a (part of a) system at ``level``."""
        ctx = self.ctx
        ctx.level = level
        ctx.peer_list.retarget(level)
        ctx.peer_list.add(ctx.self_pointer())
        ctx.is_top = True
        ctx.alive = True
        self._start_loops()

    def install(
        self,
        level: int,
        pointers: List[Pointer],
        top_pointers: List[Pointer],
        is_top: bool,
    ) -> None:
        """Direct state installation (the harness's initial seeding —
        the paper likewise *creates* its 100,000 nodes before churning)."""
        ctx = self.ctx
        ctx.level = level
        ctx.peer_list.retarget(level)
        ctx.peer_list.add(ctx.self_pointer())
        # Copy: peer-list entries are updated in place by apply_event, so
        # a Pointer object must never be shared between nodes — shared
        # state would leak event ordering across logical processes.
        for p in pointers:
            if p.node_id.value != ctx.node_id.value:
                ctx.peer_list.add(p.copy())
        ctx.top_list.merge(top_pointers)
        ctx.is_top = is_top
        ctx.alive = True
        self._start_loops()

    def join_via(
        self,
        bootstrap_address: Hashable,
        on_done: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Run the §4.3 joining handshake through ``bootstrap_address``."""
        self.join.join_via(bootstrap_address, on_done=on_done)

    def update_attached_info(self, info: Any) -> None:
        """Change this node's application info and announce it (§2's
        "information changing" event; §3's attached-info usage)."""
        ctx = self.ctx
        if not ctx.alive:
            raise NotAliveError(f"{ctx.address!r} is not alive")
        ctx.attached_info = info
        own = ctx.peer_list.get(ctx.node_id)
        if own is not None:
            own.attached_info = info
        ctx.report_event(ctx.make_event(EventKind.INFO_CHANGE))

    def leave(self) -> None:
        """Graceful departure: announce, then disconnect."""
        ctx = self.ctx
        if not ctx.alive:
            raise NotAliveError(f"{ctx.address!r} is not alive")
        event = ctx.make_event(EventKind.LEAVE)
        ctx.alive = False
        ctx.cancel_loops()
        if ctx.is_top:
            self.dissemination.start_multicast(event)
            grace = (
                ctx.config.multicast_ack_timeout * ctx.config.multicast_attempts
                + 2 * ctx.config.multicast_processing_delay
            )
            self.runtime.schedule(grace, self._disconnect)
        else:
            ctx.report_event(event)
            self.runtime.schedule(ctx.config.report_timeout, self._disconnect)

    def crash(self) -> None:
        """Abrupt departure: vanish without notification (§4.1's case)."""
        if not self.ctx.alive:
            return
        self.ctx.alive = False
        self.ctx.cancel_loops()
        self._disconnect()

    def recover_via(
        self,
        bootstrap_address: Hashable,
        on_done: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Rejoin after a crash, keeping the pre-crash peer-list cache.

        Runs the ordinary §4.3 handshake, but the download *reconciles*
        against the cached list instead of replacing it (see JoinService);
        cached entries the snapshot does not confirm are probed by the
        failure detector and evicted with obituaries if truly dead.

        The event sequence number jumps by 2 past its crash-time value so
        the recovery JOIN outruns any obituary the network multicast while
        we were down (an obituary's seq is at most our crash seq + 1 —
        detectors use their pointer's ``last_event_seq + 1``).
        """
        ctx = self.ctx
        if ctx.alive:
            raise NotAliveError(f"{ctx.address!r} is still alive; cannot recover")
        if self.runtime.is_alive(ctx.address):
            raise NotAliveError(f"{ctx.address!r} is still registered")
        ctx.endpoint = self.runtime.register(ctx.address, self._on_message)
        ctx.seq += 2
        ctx.recovering = True
        self.join.join_via(bootstrap_address, on_done=on_done)

    def _disconnect(self) -> None:
        if self.runtime.is_alive(self.ctx.address):
            self.runtime.unregister(self.ctx.address)
        if self._on_left is not None:
            self._on_left(self)

    def _start_loops(self) -> None:
        self.failure.start()
        self.levels.start_level_loop()
        self.maintenance.start()

    def _stop_loops(self) -> None:
        self.ctx.cancel_loops()

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        if not self.ctx.alive:
            return
        kind = msg.kind
        if kind == "probe":
            self.failure.on_probe(msg)
        elif kind == "mcast":
            self.dissemination.on_mcast(msg)
        elif kind == "event-copy":
            self.dissemination.on_event_copy(msg)
        elif kind == "report":
            self.dissemination.on_report(msg)
        elif kind == "get-top":
            self.join.on_get_top(msg)
        elif kind == "level-query":
            self.join.on_level_query(msg)
        elif kind == "download":
            self.join.on_download(msg)
        elif kind == "get-topnodes":
            self.dissemination.on_get_topnodes(msg)
        elif kind == "bridge-subscribe":
            self.dissemination.on_bridge_subscribe(msg)
        # Unknown kinds and late acks are ignored.

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ctx = self.ctx
        idrepr = (
            ctx.node_id.bitstring()
            if ctx.node_id.bits <= 16
            else hex(ctx.node_id.value)
        )
        return (
            f"<PeerWindowNode {ctx.address!r} id={idrepr} level={ctx.level} "
            f"{'top ' if ctx.is_top else ''}{'alive' if ctx.alive else 'gone'}>"
        )
