"""The PeerWindow node: the full protocol state machine.

One :class:`PeerWindowNode` implements everything §4 specifies, wired to a
simulated transport:

* message handling (probes, multicast, reports, join assistance,
  downloads, top-node list queries);
* the §4.1 failure-detection probe loop over the eigenstring ring;
* origination and relay of the §4.2 tree multicast (acks, retries,
  stale-pointer redirects) via :class:`~repro.core.multicast.MulticastForwarder`;
* the §4.3 joining handshake (find top node → level estimation → list
  download → join multicast) and warm-up;
* the §2/§4.3 autonomic level controller;
* §4.5 lazy top-node list maintenance (piggybacked pointers);
* the §4.6 refresh/expiry accuracy machinery.

Part handling (§4.4): each node tracks whether it believes itself a *top
node* (no stronger node in its part).  Top nodes answer reports with
multicasts and keep a :class:`~repro.core.topnodes.CrossPartTopList` for
other parts.  Part *merging* (a top node raising above its part's level)
uses a bridge subscription — see DESIGN.md §7; the paper leaves this path
unspecified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Optional

import numpy as np

from repro.core.analytic import estimate_join_level
from repro.core.config import ProtocolConfig
from repro.core.errors import NotAliveError
from repro.core.events import EventKind, EventRecord, apply_event
from repro.core.multicast import MulticastForwarder
from repro.core.nodeid import NodeId, eigenstring
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer
from repro.core.refresh import LifetimeEstimator, RefreshManager
from repro.core.levels import LevelController, LevelDecision
from repro.core.topnodes import CrossPartTopList, TopNodeList
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.engine import EventHandle, Simulator


@dataclass
class NodeStats:
    """Per-node protocol counters (reset never; read by the harness)."""

    events_applied: int = 0
    events_originated: int = 0
    mcasts_received: int = 0
    mcast_duplicates: int = 0
    probes_sent: int = 0
    failures_detected: int = 0
    reports_sent: int = 0
    reports_failed: int = 0
    reports_served: int = 0
    level_raises: int = 0
    level_lowers: int = 0
    refreshes_sent: int = 0
    downloads_served: int = 0
    joins_assisted: int = 0


class PeerWindowNode:
    """A live protocol participant.

    Construction wires the node to the transport but does **not** join it:
    call :meth:`bootstrap_first` for the very first node of a system, or
    :meth:`join_via` with a bootstrap address for everyone else.  The
    :class:`~repro.core.protocol.PeerWindowNetwork` harness drives both.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        config: ProtocolConfig,
        node_id: NodeId,
        address: Hashable,
        threshold_bps: float,
        rng: np.random.Generator,
        attached_info: Any = None,
        on_left: Optional[Callable[["PeerWindowNode"], None]] = None,
    ):
        self.sim = sim
        self.transport = transport
        self.config = config
        self.node_id = node_id
        self.address = address
        self.level = 0
        self.threshold_bps = float(threshold_bps)
        self.rng = rng
        self.attached_info = attached_info
        self.alive = False
        self.is_top = False
        self._seq = 0
        self._on_left = on_left

        self.peer_list = PeerList(node_id, 0)
        self.top_list = TopNodeList(config.top_list_size)
        self.cross_parts = CrossPartTopList(config.top_list_size)
        self.estimator = LifetimeEstimator(prior_mean=3600.0)
        self.refresh_mgr = RefreshManager(config, self.estimator)
        self.controller = LevelController(config, threshold_bps)
        self.stats = NodeStats()
        #: Addresses subscribed to copies of every multicast this (top)
        #: node originates — the part-merge bridge (DESIGN.md §7).
        self.bridge_subscribers: dict[int, Pointer] = {}
        self._seen_events: dict[int, int] = {}  # subject id value -> max seq
        self._loop_handles: List[EventHandle] = []
        self._raising = False
        self.endpoint = transport.register(address, self._on_message)

        self.forwarder = MulticastForwarder(
            config,
            node_id,
            self.peer_list,
            send_fn=self._mcast_send,
            on_stale_pointer=lambda p: self.estimator.observe_departure(p, self.sim.now),
        )

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------

    @property
    def eigenstring(self) -> str:
        return eigenstring(self.node_id, self.level)

    def self_pointer(self) -> Pointer:
        return Pointer(
            node_id=self.node_id,
            address=self.address,
            level=self.level,
            attached_info=self.attached_info,
            last_refresh=self.sim.now,
            last_event_seq=self._seq,
        )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _make_event(self, kind: EventKind) -> EventRecord:
        return EventRecord(
            kind=kind,
            subject_id=self.node_id,
            subject_level=self.level,
            subject_address=self.address,
            seq=self._next_seq(),
            origin_time=self.sim.now,
            attached_info=self.attached_info,
        )

    # ------------------------------------------------------------------
    # lifecycle: bootstrap / join / leave / crash
    # ------------------------------------------------------------------

    def bootstrap_first(self, level: int = 0) -> None:
        """Become the first node of a (part of a) system at ``level``."""
        self.level = level
        self.peer_list.retarget(level)
        self.peer_list.add(self.self_pointer())
        self.is_top = True
        self.alive = True
        self._start_loops()

    def install(
        self,
        level: int,
        pointers: List[Pointer],
        top_pointers: List[Pointer],
        is_top: bool,
    ) -> None:
        """Direct state installation (the harness's initial seeding —
        the paper likewise *creates* its 100,000 nodes before churning)."""
        self.level = level
        self.peer_list.retarget(level)
        self.peer_list.add(self.self_pointer())
        for p in pointers:
            if p.node_id.value != self.node_id.value:
                self.peer_list.add(p)
        self.top_list.merge(top_pointers)
        self.is_top = is_top
        self.alive = True
        self._start_loops()

    def join_via(
        self,
        bootstrap_address: Hashable,
        on_done: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Run the §4.3 joining handshake through ``bootstrap_address``."""
        done = on_done if on_done is not None else (lambda ok: None)

        # Step 1: find a top node of our part.
        msg = Message(self.address, bootstrap_address, "get-top", payload=self.node_id,
                      size_bits=self.config.ack_bits)
        self.transport.request(
            msg,
            timeout=self.config.report_timeout,
            on_reply=lambda reply: self._join_got_top(reply.payload, done),
            on_timeout=lambda: done(False),
        )

    def _join_got_top(self, top_ptr: Optional[Pointer], done: Callable[[bool], None]) -> None:
        if top_ptr is None:
            done(False)
            return
        # Step 2: ask the top node for its level and measured cost.
        msg = Message(self.address, top_ptr.address, "level-query",
                      payload=self.node_id, size_bits=self.config.ack_bits)
        self.transport.request(
            msg,
            timeout=self.config.report_timeout,
            on_reply=lambda reply: self._join_got_level(top_ptr, reply.payload, done),
            on_timeout=lambda: done(False),
        )

    def _join_got_level(
        self, top_ptr: Pointer, info: tuple, done: Callable[[bool], None]
    ) -> None:
        top_level, top_cost, top_pointers = info
        target = estimate_join_level(top_level, top_cost, self.threshold_bps)
        # A joiner cannot start *stronger* than the top node that serves
        # its download — the downloaded list would not cover the wider
        # prefix (in a split system that would silently merge parts with a
        # half-empty list).  Clamp to the part's level; the autonomic
        # controller may raise (and properly download) later.
        target = min(max(target, top_level), self.node_id.bits)
        level = min(target + self.config.warmup_extra_levels, self.node_id.bits)
        self.top_list.merge(list(top_pointers) + [top_ptr])
        # Step 3: download the peer list (and top-node list) from the top
        # node, whose list covers any prefix of ours.
        msg = Message(self.address, top_ptr.address, "download",
                      payload=(self.node_id, level), size_bits=self.config.ack_bits)
        self.transport.request(
            msg,
            timeout=self.config.report_timeout,
            on_reply=lambda reply: self._join_got_download(
                top_ptr, level, target, top_level, reply.payload, done
            ),
            on_timeout=lambda: done(False),
        )

    def _join_got_download(
        self,
        top_ptr: Pointer,
        level: int,
        target_level: int,
        top_level: int,
        payload: tuple,
        done: Callable[[bool], None],
    ) -> None:
        pointers, top_pointers = payload
        self.level = level
        self.peer_list.retarget(level)
        self.peer_list.add(self.self_pointer())
        for p in pointers:
            if p.node_id.value != self.node_id.value and p.node_id.shares_prefix(
                self.node_id, level
            ):
                self.peer_list.add(p.copy(last_refresh=self.sim.now))
        self.top_list.merge(list(top_pointers))
        self.is_top = level <= top_level
        self.alive = True
        self._start_loops()
        # Step 4: multicast the joining event around the audience set.
        self.report_event(self._make_event(EventKind.JOIN))
        done(True)
        # Warm-up (§4.3): raise to the estimated level in the background.
        if level > target_level:
            self.sim.schedule(0.0, self._warmup_raise, target_level)

    def _warmup_raise(self, target_level: int) -> None:
        if not self.alive or self.level <= target_level:
            return
        self._initiate_raise(self.level - 1)
        # Keep raising until the warm-up target is reached.
        self.sim.schedule(
            self.config.report_timeout, self._warmup_raise, target_level
        )

    def update_attached_info(self, info: Any) -> None:
        """Change this node's application info and announce it (§2's
        "information changing" event; §3's attached-info usage)."""
        if not self.alive:
            raise NotAliveError(f"{self.address!r} is not alive")
        self.attached_info = info
        own = self.peer_list.get(self.node_id)
        if own is not None:
            own.attached_info = info
        self.report_event(self._make_event(EventKind.INFO_CHANGE))

    def leave(self) -> None:
        """Graceful departure: announce, then disconnect."""
        if not self.alive:
            raise NotAliveError(f"{self.address!r} is not alive")
        event = self._make_event(EventKind.LEAVE)
        self.alive = False
        self._stop_loops()
        if self.is_top:
            self._start_multicast(event)
            grace = (
                self.config.multicast_ack_timeout * self.config.multicast_attempts
                + 2 * self.config.multicast_processing_delay
            )
            self.sim.schedule(grace, self._disconnect)
        else:
            self.report_event(event)
            self.sim.schedule(self.config.report_timeout, self._disconnect)

    def crash(self) -> None:
        """Abrupt departure: vanish without notification (§4.1's case)."""
        if not self.alive:
            return
        self.alive = False
        self._stop_loops()
        self._disconnect()

    def _disconnect(self) -> None:
        if self.transport.is_alive(self.address):
            self.transport.unregister(self.address)
        if self._on_left is not None:
            self._on_left(self)

    def _track(self, handle: EventHandle) -> None:
        """Track a loop timer for cancellation at departure, pruning dead
        handles so long sessions do not accumulate them."""
        self._loop_handles.append(handle)
        if len(self._loop_handles) > 64:
            self._loop_handles = [h for h in self._loop_handles if h.active]

    def _start_loops(self) -> None:
        self._schedule_probe(self.config.probe_interval)
        self._track(self.sim.schedule(self.config.level_check_interval, self._level_tick))
        self._track(
            self.sim.schedule(
                self.refresh_mgr.refresh_due_interval(self.level), self._refresh_tick
            )
        )
        self._track(self.sim.schedule(self.config.level_check_interval, self._sweep_tick))

    def _stop_loops(self) -> None:
        for handle in self._loop_handles:
            handle.cancel()
        self._loop_handles.clear()

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        if not self.alive:
            return
        kind = msg.kind
        if kind == "probe":
            self.transport.send(msg.make_reply("probe-ack", size_bits=self.config.ack_bits))
        elif kind == "mcast":
            self._on_mcast(msg)
        elif kind == "report":
            self._on_report(msg)
        elif kind == "get-top":
            self._on_get_top(msg)
        elif kind == "level-query":
            self._on_level_query(msg)
        elif kind == "download":
            self._on_download(msg)
        elif kind == "get-topnodes":
            self.transport.send(
                msg.make_reply(
                    "topnodes",
                    payload=[p.copy() for p in self.top_list.pointers()],
                    size_bits=max(1, len(self.top_list)) * self.config.pointer_bits,
                )
            )
        elif kind == "bridge-subscribe":
            ptr, propagate = msg.payload
            fresh = ptr.node_id.value not in self.bridge_subscribers
            self.bridge_subscribers[ptr.node_id.value] = ptr
            self.transport.send(msg.make_reply("bridge-ack", size_bits=self.config.ack_bits))
            if propagate and fresh:
                # Every top of this part roots multicasts, so the whole
                # top group must carry the subscription (one idempotent
                # hop; group members do not re-propagate).
                for peer in self.peer_list.group_members():
                    if peer.node_id.value == self.node_id.value:
                        continue
                    self.transport.send(
                        Message(
                            self.address,
                            peer.address,
                            "bridge-subscribe",
                            payload=(ptr, False),
                            size_bits=self.config.pointer_bits,
                        )
                    )
        # Unknown kinds and late acks are ignored.

    # -- multicast relay ----------------------------------------------------

    def _on_mcast(self, msg: Message) -> None:
        event, start_bit = msg.payload
        self.transport.send(msg.make_reply("mcast-ack", size_bits=self.config.ack_bits))
        self.stats.mcasts_received += 1
        subject_value = event.subject_id.value
        if subject_value == self.node_id.value:
            # We are in our own audience, so a *false* failure report (a
            # lost probe ack, §4.1) reaches us as our own obituary.  Refute
            # it with a higher-sequence refresh so every audience member
            # re-adds us.  (The paper leaves false positives to the slow
            # §4.6 refresh cycle; this is the immediate version.)
            if self.alive and event.kind is EventKind.LEAVE and event.seq >= self._seq:
                self._seq = event.seq
                self.report_event(self._make_event(EventKind.REFRESH))
            return
        if self._seen_events.get(subject_value, -1) >= event.seq:
            self.stats.mcast_duplicates += 1
            return
        self._seen_events[subject_value] = event.seq
        self._apply(event)
        # §5.1: a relay spends 1 s "receiving, calculating and sending".
        self.sim.schedule(
            self.config.multicast_processing_delay,
            self._forward_if_alive,
            event,
            start_bit,
        )

    def _forward_if_alive(self, event: EventRecord, start_bit: int) -> None:
        if self.alive:
            self.forwarder.forward(event, start_bit)

    def _mcast_send(
        self,
        target: Pointer,
        event: EventRecord,
        next_bit: int,
        on_result: Callable[[bool], None],
    ) -> None:
        msg = Message(
            self.address,
            target.address,
            "mcast",
            payload=(event, next_bit),
            size_bits=self.config.event_message_bits,
        )
        self.transport.request(
            msg,
            timeout=self.config.multicast_ack_timeout,
            on_reply=lambda _reply: on_result(True),
            on_timeout=lambda: on_result(False),
        )

    def _start_multicast(self, event: EventRecord) -> None:
        """Originate a multicast as a top node (root of the tree)."""
        self._seen_events[event.subject_id.value] = event.seq
        self._apply(event)
        self.sim.schedule(
            self.config.multicast_processing_delay,
            self._root_forward,
            event,
        )

    def _root_forward(self, event: EventRecord) -> None:
        if not self.alive and event.subject_id.value != self.node_id.value:
            return
        self.forwarder.forward(event, 0)
        if (
            event.kind is EventKind.LEAVE
            and event.subject_id.value != self.node_id.value
        ):
            # Copy the obituary to the subject itself: silently dropped if
            # it is really dead, refuted with a refresh if the failure
            # detection was a false positive (lost probe acks).
            self.transport.send(
                Message(
                    self.address,
                    event.subject_address,
                    "mcast",
                    payload=(event, self.node_id.bits),
                    size_bits=self.config.event_message_bits,
                )
            )
        # Part-merge bridge: forward a copy to cross-part subscribers whose
        # eigenstring covers the subject.
        for ptr in list(self.bridge_subscribers.values()):
            if ptr.node_id.shares_prefix(event.subject_id, ptr.level):
                self._mcast_send(ptr, event, self.node_id.bits, lambda ok: None)

    def _apply(self, event: EventRecord) -> None:
        departed = None
        if event.kind is EventKind.LEAVE:
            departed = self.peer_list.get(event.subject_id)
        changed = apply_event(self.peer_list, event, self.sim.now, owner_id=self.node_id)
        if changed:
            self.stats.events_applied += 1
            if departed is not None:
                self.estimator.observe_departure(departed, self.sim.now)
        # Keep the top-node list's levels fresh.
        if event.subject_id in self.top_list:
            if event.kind is EventKind.LEAVE:
                self.top_list.remove(event.subject_id)
            else:
                self.top_list.merge([
                    Pointer(
                        node_id=event.subject_id,
                        address=event.subject_address,
                        level=event.subject_level,
                        attached_info=event.attached_info,
                        last_refresh=self.sim.now,
                        last_event_seq=event.seq,
                    )
                ])

    # -- report path ----------------------------------------------------------

    def report_event(self, event: EventRecord, _attempt: int = 0) -> None:
        """Deliver ``event`` to a top node for multicast (§4.1/§4.5)."""
        if event.subject_id.value == self.node_id.value:
            self.stats.events_originated += 1
        if self.is_top:
            # A top node is its own multicast root (this also covers a top
            # node announcing its own leave: alive is already False then).
            self._start_multicast(event)
            return
        top = self.top_list.choose(self.rng)
        if top is None:
            self._report_fallback(event, _attempt)
            return
        self.stats.reports_sent += 1
        msg = Message(
            self.address,
            top.address,
            "report",
            payload=event,
            size_bits=self.config.event_message_bits,
        )
        self.transport.request(
            msg,
            timeout=self.config.report_timeout,
            on_reply=lambda reply: self.top_list.merge(
                [p for p in reply.payload if p.node_id.value != self.node_id.value]
            ),
            on_timeout=lambda: self._report_retry(event, top, _attempt),
        )

    def _report_retry(self, event: EventRecord, dead_top: Pointer, attempt: int) -> None:
        self.top_list.remove(dead_top.node_id)
        if attempt + 1 >= 3 * self.config.top_list_size:
            self.stats.reports_failed += 1
            return
        self.report_event(event, _attempt=attempt + 1)

    def _report_fallback(self, event: EventRecord, attempt: int) -> None:
        """§4.5: when every top-node pointer is stale, ask a peer for its
        top-node list as a substitution."""
        if attempt >= 3 * self.config.top_list_size:
            self.stats.reports_failed += 1
            return
        peers = [
            p for p in self.peer_list if p.node_id.value != self.node_id.value
        ]
        if not peers:
            self.stats.reports_failed += 1
            return
        peer = peers[int(self.rng.integers(0, len(peers)))]
        msg = Message(self.address, peer.address, "get-topnodes",
                      size_bits=self.config.ack_bits)
        self.transport.request(
            msg,
            timeout=self.config.report_timeout,
            on_reply=lambda reply: (
                self.top_list.merge(
                    [p for p in reply.payload if p.node_id.value != self.node_id.value]
                ),
                self.report_event(event, _attempt=attempt + 1),
            ),
            on_timeout=lambda: self._report_fallback(event, attempt + 1),
        )

    def _on_report(self, msg: Message) -> None:
        event: EventRecord = msg.payload
        self.stats.reports_served += 1
        if not self.is_top:
            # Stale top-node pointer at the reporter: we are no longer a
            # top node.  Ack with our *current* top-node list so the
            # reporter heals (§4.5), and relay the event upward ourselves.
            piggyback = [p.copy() for p in self.top_list.pointers()]
            self.transport.send(
                msg.make_reply(
                    "report-ack",
                    payload=piggyback,
                    size_bits=max(1, len(piggyback)) * self.config.pointer_bits,
                )
            )
            if self._seen_events.get(event.subject_id.value, -1) < event.seq:
                # Mark seen before relaying so relay cycles through other
                # stale "tops" terminate at the first revisit.
                self._seen_events[event.subject_id.value] = event.seq
                self.report_event(event)
            return
        # Piggyback t-1 pointers to top nodes of the reporter's part (§4.5):
        # our own group members (we are a top node of that part).
        piggyback = [
            p.copy()
            for p in self.peer_list.group_members()
            if p.node_id.value != self.node_id.value
        ][: self.config.top_list_size - 1] + [self.self_pointer()]
        self.transport.send(
            msg.make_reply(
                "report-ack",
                payload=piggyback,
                size_bits=len(piggyback) * self.config.pointer_bits,
            )
        )
        subject_value = event.subject_id.value
        if self._seen_events.get(subject_value, -1) >= event.seq:
            return
        self._start_multicast(event)

    # -- join assistance ----------------------------------------------------------

    def _on_get_top(self, msg: Message) -> None:
        joiner_id: NodeId = msg.payload
        self.stats.joins_assisted += 1
        same_part = joiner_id.shares_prefix(self.node_id, self._part_level())
        if same_part:
            if self.is_top:
                self.transport.send(
                    msg.make_reply("top-ptr", payload=self.self_pointer(),
                                   size_bits=self.config.pointer_bits)
                )
                return
            tops = self.top_list.pointers()
            payload = tops[int(self.rng.integers(0, len(tops)))] if tops else None
            self.transport.send(
                msg.make_reply("top-ptr", payload=payload,
                               size_bits=self.config.pointer_bits)
            )
            return
        # Cross-part (§4.4): a top node consults its cross-part list; a
        # plain node relays the question to a top node of its own part.
        if self.is_top:
            candidates = self.cross_parts.find_for_id(joiner_id)
            payload = (
                candidates[int(self.rng.integers(0, len(candidates)))]
                if candidates
                else None
            )
            self.transport.send(
                msg.make_reply("top-ptr", payload=payload,
                               size_bits=self.config.pointer_bits)
            )
            return
        tops = self.top_list.pointers()
        if not tops:
            self.transport.send(msg.make_reply("top-ptr", payload=None,
                                               size_bits=self.config.ack_bits))
            return
        relay_to = tops[int(self.rng.integers(0, len(tops)))]
        inner = Message(self.address, relay_to.address, "get-top",
                        payload=joiner_id, size_bits=self.config.ack_bits)
        self.transport.request(
            inner,
            timeout=self.config.report_timeout,
            on_reply=lambda reply: self.transport.send(
                msg.make_reply("top-ptr", payload=reply.payload,
                               size_bits=self.config.pointer_bits)
            ),
            on_timeout=lambda: self.transport.send(
                msg.make_reply("top-ptr", payload=None,
                               size_bits=self.config.ack_bits)
            ),
        )

    def _on_level_query(self, msg: Message) -> None:
        piggyback = [
            p.copy() for p in self.top_list.pointers()[: self.config.top_list_size - 1]
        ]
        if self.is_top:
            piggyback = [
                p.copy()
                for p in self.peer_list.group_members()
                if p.node_id.value != self.node_id.value
            ][: self.config.top_list_size - 1]
        payload = (
            self.level,
            self.endpoint.ewma_in.rate(self.sim.now),
            piggyback,
        )
        self.transport.send(
            msg.make_reply(
                "level-info",
                payload=payload,
                size_bits=self.config.ack_bits
                + len(piggyback) * self.config.pointer_bits,
            )
        )

    def _on_download(self, msg: Message) -> None:
        requester_id, prefix_len = msg.payload
        self.stats.downloads_served += 1
        matching = [
            p.copy()
            for p in self.peer_list
            if p.node_id.shares_prefix(requester_id, prefix_len)
        ]
        tops = [p.copy() for p in self.top_list.pointers()]
        if self.is_top:
            tops = [
                p.copy()
                for p in self.peer_list.group_members()
                if p.node_id.value != self.node_id.value
            ][: self.config.top_list_size - 1] + [self.self_pointer()]
        self.transport.send(
            msg.make_reply(
                "download-data",
                payload=(matching, tops),
                size_bits=max(1, len(matching) + len(tops)) * self.config.pointer_bits,
            )
        )

    # ------------------------------------------------------------------
    # failure detection (§4.1)
    # ------------------------------------------------------------------

    def _schedule_probe(self, delay: float) -> None:
        self._track(self.sim.schedule(delay, self._probe_tick))

    def _probe_tick(self) -> None:
        if not self.alive:
            return
        target = self.peer_list.ring_successor(self.node_id)
        if target is None:
            self._schedule_probe(self.config.probe_interval)
            return
        self._probe_target(target, self.config.probe_misses_to_fail)

    def _probe_target(self, target: Pointer, attempts_left: int) -> None:
        if not self.alive:
            return
        self.stats.probes_sent += 1
        msg = Message(self.address, target.address, "probe",
                      size_bits=self.config.heartbeat_bits)
        self.transport.request(
            msg,
            timeout=self.config.probe_timeout,
            on_reply=lambda _r: self._schedule_probe(self.config.probe_interval),
            on_timeout=lambda: self._probe_miss(target, attempts_left - 1),
        )

    def _probe_miss(self, target: Pointer, attempts_left: int) -> None:
        if not self.alive:
            return
        if attempts_left > 0:
            self._probe_target(target, attempts_left)
            return
        # Failure detected: report, remove, and immediately redirect the
        # probing to the next neighbor (§4.1's concurrent-failure story).
        self.stats.failures_detected += 1
        departed = self.peer_list.remove(target.node_id)
        if departed is not None:
            self.estimator.observe_departure(departed, self.sim.now)
        event = EventRecord(
            kind=EventKind.LEAVE,
            subject_id=target.node_id,
            subject_level=target.level,
            subject_address=target.address,
            seq=target.last_event_seq + 1,
            origin_time=self.sim.now,
        )
        self.report_event(event)
        nxt = self.peer_list.ring_successor(self.node_id)
        if nxt is not None:
            self._probe_target(nxt, self.config.probe_misses_to_fail)
        else:
            self._schedule_probe(self.config.probe_interval)

    # ------------------------------------------------------------------
    # autonomic level control (§2, §4.3)
    # ------------------------------------------------------------------

    def _part_level(self) -> int:
        """The believed part-prefix length: our level if we are a top node,
        else the strongest level in our top-node list."""
        if self.is_top:
            return self.level
        known = self.top_list.min_level()
        return known if known is not None else 0

    def _level_tick(self) -> None:
        if not self.alive:
            return
        measured = self.endpoint.ewma_in.rate(self.sim.now)
        decision = self.controller.decide(self.level, measured)
        if decision is LevelDecision.LOWER:
            self._commit_lower()
        elif decision is LevelDecision.RAISE and not self._raising:
            new_level = max(self.level - 1, 0)
            if not self.is_top and new_level < self._part_level():
                new_level = self._part_level()  # clamp: become a top first
            if new_level < self.level:
                self._initiate_raise(new_level)
        self._track(
            self.sim.schedule(self.config.level_check_interval, self._level_tick)
        )

    def _commit_lower(self) -> None:
        if self.level >= self.node_id.bits:
            return
        old_level = self.level
        was_top = self.is_top
        group = [
            p
            for p in self.peer_list.group_members()
            if p.node_id.value != self.node_id.value
        ]
        # Group members that still share our (longer) prefix stay in our
        # part and — being at the old, stronger level — are now our tops.
        same_side = [
            p for p in group if p.node_id.bit(old_level) == self.node_id.bit(old_level)
        ]
        siblings = [
            p for p in group if p.node_id.bit(old_level) != self.node_id.bit(old_level)
        ]
        self.level = old_level + 1
        self.peer_list.retarget(self.level)
        self.stats.level_lowers += 1
        if was_top and same_side:
            # We were a top node, so our eigenstring group was the set of
            # our part's tops; the members staying on our side of the new
            # bit are now strictly stronger than us — our new tops.
            self.is_top = False
            self.top_list.merge(
                [p.copy(last_refresh=self.sim.now) for p in same_side]
            )
        # A non-top node keeps its existing top-node list (its group
        # members were ordinary peers, not tops); a top node with no
        # same-side group members stays the top of the split-off part.
        if was_top and self.is_top and siblings:
            # The part split at this level: the diverging members are the
            # sibling part's tops (DESIGN.md §7).
            sibling_prefix = eigenstring(siblings[0].node_id, self.level)
            self.cross_parts.merge(
                sibling_prefix,
                [p.copy(last_refresh=self.sim.now) for p in siblings],
            )
        own = self.peer_list.get(self.node_id)
        if own is not None:
            own.level = self.level
        self.report_event(self._make_event(EventKind.LEVEL_CHANGE))

    def _initiate_raise(self, new_level: int) -> None:
        """§4.3: download the missing pointers from a stronger node, then
        commit the level change and report it."""
        if new_level >= self.level or self._raising:
            return
        source = self._raise_source(new_level)
        if source is None:
            return
        self._raising = True
        msg = Message(self.address, source.address, "download",
                      payload=(self.node_id, new_level),
                      size_bits=self.config.ack_bits)
        self.transport.request(
            msg,
            timeout=self.config.report_timeout,
            on_reply=lambda reply: self._commit_raise(new_level, source, reply.payload),
            on_timeout=lambda: self._abort_raise(source),
        )

    def _raise_source(self, new_level: int) -> Optional[Pointer]:
        # A node whose eigenstring is a prefix of our id with level <= new
        # level covers everything we need.
        stronger = [
            p
            for p in self.peer_list
            if p.level <= new_level and p.node_id.value != self.node_id.value
            and p.node_id.shares_prefix(self.node_id, p.level)
        ]
        if stronger:
            return self.peer_list.strongest(stronger)
        if not self.is_top:
            tops = self.top_list.pointers()
            usable = [p for p in tops if p.level <= new_level]
            if usable:
                return min(usable, key=lambda p: (p.level, p.node_id.value))
            return None
        # Part merge: pull the sibling part from a cross-part top node.
        sibling_prefix = self.node_id.prefix_bits(self.level - 1) + str(
            1 - self.node_id.bit(self.level - 1)
        )
        for prefix in self.cross_parts.parts():
            if prefix.startswith(sibling_prefix) or sibling_prefix.startswith(prefix):
                candidates = self.cross_parts.for_part(prefix)
                if candidates:
                    return candidates[0]
        return None

    def _commit_raise(self, new_level: int, source: Pointer, payload: tuple) -> None:
        self._raising = False
        if not self.alive or new_level >= self.level:
            return
        pointers, tops = payload
        was_top = self.is_top
        self.level = new_level
        self.peer_list.retarget(new_level)
        for p in pointers:
            if (
                p.node_id.value != self.node_id.value
                and p.node_id.shares_prefix(self.node_id, new_level)
            ):
                if self.peer_list.get(p.node_id) is None:
                    self.peer_list.add(p.copy(last_refresh=self.sim.now))
        own = self.peer_list.get(self.node_id)
        if own is not None:
            own.level = self.level
        self.stats.level_raises += 1
        part_level = self.top_list.min_level()
        if part_level is None or new_level <= part_level:
            self.is_top = True
        if was_top and source.level >= new_level:
            # We just merged above our old part: subscribe to the sibling
            # part's event stream through its top node (bridge); the top
            # propagates the subscription across its group.
            sub = Message(self.address, source.address, "bridge-subscribe",
                          payload=(self.self_pointer(), True),
                          size_bits=self.config.pointer_bits)
            self.transport.send(sub)
        self.report_event(self._make_event(EventKind.LEVEL_CHANGE))

    def _abort_raise(self, source: Pointer) -> None:
        self._raising = False
        self.peer_list.remove(source.node_id)

    # ------------------------------------------------------------------
    # refresh & expiry (§4.6)
    # ------------------------------------------------------------------

    def _refresh_tick(self) -> None:
        if not self.alive:
            return
        self.stats.refreshes_sent += 1
        self.refresh_mgr.refreshes_sent += 1
        self.report_event(self._make_event(EventKind.REFRESH))
        self._track(
            self.sim.schedule(
                self.refresh_mgr.refresh_due_interval(self.level), self._refresh_tick
            )
        )

    def _sweep_tick(self) -> None:
        if not self.alive:
            return
        expired = self.refresh_mgr.sweep(self.peer_list, self.sim.now)
        for p in expired:
            if p.node_id.value == self.node_id.value:
                # Never expire ourselves.
                self.peer_list.add(self.self_pointer())
        self._track(
            self.sim.schedule(self.config.level_check_interval, self._sweep_tick)
        )

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        idrepr = (
            self.node_id.bitstring() if self.node_id.bits <= 16 else hex(self.node_id.value)
        )
        return (
            f"<PeerWindowNode {self.address!r} id={idrepr} level={self.level} "
            f"{'top ' if self.is_top else ''}{'alive' if self.alive else 'gone'}>"
        )
