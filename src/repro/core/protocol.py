"""The detailed-engine harness: a whole PeerWindow system in one object.

:class:`PeerWindowNetwork` owns the simulator, the topology, the transport
and every :class:`~repro.core.node.PeerWindowNode`; it provides:

* **seeding** — install an initial population with consistent peer lists,
  top-node lists, parts and levels (the paper likewise first *creates* its
  100,000 nodes, then churns them);
* **protocol joins/leaves/crashes** at runtime;
* **ground-truth measurement** — per-level peer-list error rates (stale +
  absent entries vs. the oracle list), level histograms, peer-list sizes
  and bandwidth by level: the quantities of figures 5-8 at detailed-engine
  scale.

The harness is the integration surface the examples and most integration
tests use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.node import PeerWindowNode
from repro.core.nodeid import NodeId
from repro.core.runtime import PartitionedRuntime, SimRuntime
from repro.core.seeding import SeedSpec, seed_network
from repro.net.latency import PairwiseLatencyModel, UniformLatencyModel
from repro.net.topology import Topology
from repro.net.transport import Transport
from repro.obs import metrics as m
from repro.obs.trace import Observability, Span
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@dataclass
class LevelReport:
    """Per-level aggregate of a network snapshot."""

    level: int
    count: int = 0
    peer_list_sizes: List[int] = field(default_factory=list)
    error_rates: List[float] = field(default_factory=list)
    in_bps: List[float] = field(default_factory=list)
    out_bps: List[float] = field(default_factory=list)

    def mean_error(self) -> float:
        return float(np.mean(self.error_rates)) if self.error_rates else 0.0

    def mean_size(self) -> float:
        return float(np.mean(self.peer_list_sizes)) if self.peer_list_sizes else 0.0


class PeerWindowNetwork:
    """A simulated PeerWindow deployment."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        topology: Optional[Topology] = None,
        master_seed: int = 0,
        loss_rate: float = 0.0,
        sim: Optional[Simulator] = None,
        parallel: Optional[int] = None,
        lookahead: Optional[float] = None,
        threads: bool = False,
        observability: bool = False,
    ):
        """``sim`` lets a caller embed the network in an externally-owned
        simulator — e.g. one logical process of the ONSP-style
        :class:`~repro.sim.parallel.ParallelSimulator` (split PeerWindow
        parts are mutually independent, so one part per LP is the natural
        partition; see ``examples/onsp_parallel.py``).

        ``parallel=N`` instead partitions the *whole* network across the
        ``N`` logical processes of a
        :class:`~repro.core.runtime.PartitionedRuntime` (nodes are assigned
        by ``node_id % N``).  Requires a topology with a pure
        ``pair_latency`` (default: :class:`~repro.net.latency.PairwiseLatencyModel`);
        a fixed-seed run produces bit-for-bit the same results as the
        sequential engine — including under ``loss_rate > 0``, whose drop
        decisions are hash-derived per message rather than RNG-drawn.  ``lookahead`` defaults to the
        topology's minimum latency; ``threads=True`` runs each epoch's LPs
        on a thread pool."""
        self.config = config if config is not None else ProtocolConfig()
        self.streams = RandomStreams(master_seed)
        self.parallel = parallel
        #: Causal tracing + per-node metric registries (repro.obs).  Off
        #: by default: enabled mode records spans/metrics but never sends
        #: messages, draws randomness, or alters timing, so protocol
        #: behavior is identical either way (and, with it off, sequential
        #: and partitioned runs stay bit-for-bit equivalent).
        self.obs = Observability(enabled=observability)
        if parallel is not None:
            if parallel < 1:
                raise ValueError("parallel must be >= 1")
            if sim is not None:
                raise ValueError("parallel= and sim= are mutually exclusive")
            self.topology = (
                topology if topology is not None else PairwiseLatencyModel()
            )
            self.runtime = PartitionedRuntime(
                parallel,
                self.topology,
                lookahead=lookahead,
                threads=threads,
                loss_rate=loss_rate,
                loss_seed=master_seed,
            )
            # No single event queue exists in partitioned mode; code that
            # needs the clock uses ``self.now``.
            self.sim = None
            self.transport = None
        else:
            self.sim = sim if sim is not None else Simulator()
            self.topology = (
                topology
                if topology is not None
                else UniformLatencyModel(latency=0.05, rng=self.streams.get("topology"))
            )
            self.transport = Transport(
                self.sim,
                self.topology,
                loss_rate=loss_rate,
                rng=self.streams.get("transport"),
                loss_seed=master_seed,
            )
            self.runtime = SimRuntime(self.sim, self.transport)
        self.nodes: Dict[Hashable, PeerWindowNode] = {}
        self._next_key = 0
        self._id_rng = self.streams.get("nodeids")
        # Every id ever allocated (departed nodes included — ids are never
        # reused), so duplicate checks stay O(1) at large populations.
        self._used_ids: set = set()

    @property
    def now(self) -> float:
        """Current simulated time (mode-independent)."""
        return self.sim.now if self.sim is not None else self.runtime.now

    # ------------------------------------------------------------------
    # population management
    # ------------------------------------------------------------------

    def _alloc(self, node_id: Optional[NodeId]) -> Tuple[int, NodeId]:
        key = self._next_key
        self._next_key += 1
        if node_id is None:
            node_id = NodeId.random(self._id_rng, self.config.id_bits)
            while node_id.value in self._used_ids:  # pragma: no cover - rare at 128 bits
                node_id = NodeId.random(self._id_rng, self.config.id_bits)
        self._used_ids.add(node_id.value)
        return key, node_id

    def _make_node(
        self,
        node_id: Optional[NodeId],
        threshold_bps: float,
        attached_info: Any = None,
    ) -> PeerWindowNode:
        key, nid = self._alloc(node_id)
        if self.parallel is not None:
            runtime = self.runtime.runtime_for(nid.value, key)
        else:
            runtime = self.runtime
        node = PeerWindowNode(
            runtime=runtime,
            config=self.config,
            node_id=nid,
            address=key,
            threshold_bps=threshold_bps,
            rng=self.streams.spawn("node", key),
            attached_info=attached_info,
            on_left=self._node_left,
            obs=self.obs.view(key),
        )
        self.nodes[key] = node
        return node

    def _node_left(self, node: PeerWindowNode) -> None:
        self.nodes.pop(node.address, None)

    def live_nodes(self) -> List[PeerWindowNode]:
        return [n for n in self.nodes.values() if n.alive]

    def node(self, key: Hashable) -> PeerWindowNode:
        return self.nodes[key]

    # -- seeding -----------------------------------------------------------

    def seed_nodes(
        self,
        specs: Sequence[SeedSpec],
        mean_lifetime_s: float = 3600.0,
        changes_per_lifetime: float = 3.0,
        forced_level: Optional[int] = None,
    ) -> List[Hashable]:
        """Install an initial population in the protocol's converged state
        (see :func:`~repro.core.seeding.seed_network`).  Returns the node
        keys in spec order."""
        return seed_network(
            self,
            specs,
            mean_lifetime_s=mean_lifetime_s,
            changes_per_lifetime=changes_per_lifetime,
            forced_level=forced_level,
        )

    # -- runtime population changes ---------------------------------------------

    def add_first_node(
        self, threshold_bps: float, node_id: Optional[NodeId] = None, level: int = 0
    ) -> Hashable:
        node = self._make_node(node_id, threshold_bps)
        node.bootstrap_first(level)
        return node.address

    def add_node(
        self,
        threshold_bps: float,
        bootstrap: Hashable,
        node_id: Optional[NodeId] = None,
        attached_info: Any = None,
        on_done: Optional[Callable[[bool], None]] = None,
    ) -> Hashable:
        """Protocol join through ``bootstrap``; returns the new key
        immediately (the handshake completes asynchronously)."""
        node = self._make_node(node_id, threshold_bps, attached_info)
        node.join_via(bootstrap, on_done=on_done)
        return node.address

    def leave(self, key: Hashable) -> None:
        self.nodes[key].leave()

    def crash(self, key: Hashable) -> PeerWindowNode:
        """Crash ``key``; returns the node object so a chaos harness can
        later hand it to :meth:`recover_node`."""
        node = self.nodes[key]
        node.crash()
        return node

    def recover_node(
        self,
        node: PeerWindowNode,
        bootstrap: Hashable,
        on_done: Optional[Callable[[bool], None]] = None,
    ) -> Hashable:
        """Rejoin a previously crashed ``node`` through ``bootstrap``,
        reconciling its stale cached peer list against the downloaded
        snapshot (see :meth:`PeerWindowNode.recover_via`).  Returns the
        node's key immediately; the handshake completes asynchronously."""
        if node.address in self.nodes:
            raise ValueError(f"{node.address!r} is already part of the network")
        self.nodes[node.address] = node
        node.recover_via(bootstrap, on_done=on_done)
        return node.address

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        if self.parallel is not None:
            if until is None:
                raise ValueError("partitioned execution needs an explicit until=")
            if max_events is not None:
                raise ValueError(
                    "max_events is not meaningful across logical processes"
                )
            return self.runtime.run(until=until)
        return self.sim.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------
    # ground-truth measurement
    # ------------------------------------------------------------------

    def oracle_peer_ids(self, node: PeerWindowNode) -> set:
        """The correct peer list of ``node``: ids of all live nodes sharing
        its first ``level`` bits (including itself)."""
        return {
            other.node_id.value
            for other in self.live_nodes()
            if other.node_id.shares_prefix(node.node_id, node.level)
        }

    def node_error_rate(self, node: PeerWindowNode) -> float:
        """(stale + absent) / correct for one node's peer list."""
        correct = self.oracle_peer_ids(node)
        actual = set(node.peer_list.ids())
        stale = len(actual - correct)
        absent = len(correct - actual)
        if not correct:
            return 0.0
        return (stale + absent) / len(correct)

    def level_reports(self) -> Dict[int, LevelReport]:
        """Figures 5-8 at detailed-engine scale: per-level population,
        peer-list size, error rate, and in/out bandwidth."""
        now = self.now
        reports: Dict[int, LevelReport] = {}
        for node in self.live_nodes():
            rep = reports.setdefault(node.level, LevelReport(node.level))
            rep.count += 1
            rep.peer_list_sizes.append(len(node.peer_list))
            rep.error_rates.append(self.node_error_rate(node))
            rep.in_bps.append(node.endpoint.bw_in.lifetime_rate(now))
            rep.out_bps.append(node.endpoint.bw_out.lifetime_rate(now))
        return dict(sorted(reports.items()))

    def level_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for node in self.live_nodes():
            hist[node.level] = hist.get(node.level, 0) + 1
        return dict(sorted(hist.items()))

    def mean_error_rate(self) -> float:
        live = self.live_nodes()
        if not live:
            return 0.0
        return float(np.mean([self.node_error_rate(n) for n in live]))

    def stats_summary(self) -> Dict[str, float]:
        """Network-wide protocol counters summed over live nodes, plus
        transport totals — the one-call health dump."""
        from dataclasses import asdict

        totals: Dict[str, float] = {}
        for node in self.live_nodes():
            for key, value in asdict(node.stats).items():
                totals[key] = totals.get(key, 0) + value
        totals["live_nodes"] = len(self.live_nodes())
        totals["mean_error_rate"] = self.mean_error_rate()
        transport_stats = (
            self.runtime.transport_stats()
            if self.parallel is not None
            else self.transport.stats()
        )
        for key, value in transport_stats.items():
            if isinstance(value, (int, float)):
                totals[f"transport_{key}"] = value
        return totals

    # -- observability ----------------------------------------------------

    def spans(self) -> List[Span]:
        """All recorded spans network-wide, deterministically ordered (see
        :meth:`repro.obs.trace.Observability.spans`).  Empty when the
        network was built without ``observability=True``."""
        return self.obs.spans()

    def traces(self) -> Dict[str, List[Span]]:
        """Spans grouped by trace id — each value is one causal tree
        (a multicast's hops, a join handshake, a probe chain)."""
        return self.obs.traces()

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The network-wide metrics aggregate.

        Before folding the per-node registries this refreshes the sampled
        gauges (peer-list size and population per level, from live state)
        and injects the transport's byte/message counters per message
        kind, so the one snapshot carries everything the
        :mod:`repro.core.analytic` cost-model comparison needs.
        """
        if self.obs.enabled:
            # Clear previous samples everywhere (departed nodes included):
            # a node that changed level — or left — since the last snapshot
            # must not keep contributing stale gauges to the aggregate.
            for view in self.obs.views().values():
                view.registry.gauges = {
                    k: v
                    for k, v in view.registry.gauges.items()
                    if not k.startswith((m.PEERS_SIZE_LEVEL + ".", m.NODES_LEVEL + "."))
                }
            for node in self.live_nodes():
                reg = node.ctx.obs.registry
                reg.set_gauge(f"{m.PEERS_SIZE_LEVEL}.{node.level}", len(node.peer_list))
                reg.set_gauge(f"{m.NODES_LEVEL}.{node.level}", 1)
        snapshot = self.obs.metrics_snapshot()
        transport_stats = (
            self.runtime.transport_stats()
            if self.parallel is not None
            else self.transport.stats()
        )
        counters = snapshot["counters"]
        for kind, count in sorted(transport_stats.get("by_kind", {}).items()):
            counters[f"{m.TRANSPORT_MSGS}.{kind}"] = count
        for kind, bits in sorted(transport_stats.get("bytes_by_kind", {}).items()):
            counters[f"{m.TRANSPORT_BITS}.{kind}"] = bits
        return snapshot

    def enable_profiling(self) -> None:
        """Attach wall-clock phase profilers to the execution engine
        (event dispatch + transport delivery; in partitioned mode also the
        epoch-barrier orchestration).  Diagnostics only — wall-clock never
        feeds back into simulated behavior."""
        from repro.obs.profile import PhaseProfiler

        if self.parallel is not None:
            self.runtime.enable_profiling()
            return
        prof = PhaseProfiler()
        self.sim.profiler = prof
        self.transport.profiler = prof
        self._profiler = prof

    def profile_snapshot(self) -> Dict[str, Any]:
        """Profiling snapshot (phase -> calls/seconds/mean_us); empty
        when :meth:`enable_profiling` was never called."""
        if self.parallel is not None:
            return self.runtime.profile_snapshot()
        prof = getattr(self, "_profiler", None)
        if prof is None:
            from repro.obs.profile import PhaseProfiler

            prof = PhaseProfiler()
        return prof.snapshot()

    # -- live monitoring --------------------------------------------------

    def enable_monitoring(self, interval: float = 30.0) -> Dict[str, Any]:
        """Record population / error-rate / level-count time series every
        ``interval`` simulated seconds.  Returns the dict of
        :class:`~repro.sim.monitor.TimeSeries` (live — it fills as the
        simulation runs); calling again replaces the previous monitor.
        """
        from repro.sim.monitor import TimeSeries

        if self.parallel is not None:
            raise NotImplementedError(
                "monitoring samples the whole network from one event queue; "
                "in partitioned mode take snapshots between run() calls instead"
            )
        series = {
            "population": TimeSeries("population"),
            "mean_error_rate": TimeSeries("mean_error_rate"),
            "n_levels": TimeSeries("n_levels"),
        }

        def sample() -> None:
            now = self.sim.now
            live = self.live_nodes()
            series["population"].record(now, float(len(live)))
            series["mean_error_rate"].record(now, self.mean_error_rate())
            series["n_levels"].record(now, float(len(self.level_histogram())))

        if getattr(self, "_monitor_task", None) is not None:
            self._monitor_task.cancel()
        self._monitor_task = self.sim.every(interval, sample, start_delay=0.0)
        self.monitor_series = series
        return series

    def parts(self) -> Dict[str, int]:
        """Current part structure (prefix -> population), from the oracle
        part rule of DESIGN.md §7."""
        live = self.live_nodes()
        eigen = sorted({n.eigenstring for n in live}, key=len)
        out: Dict[str, int] = {}
        for n in live:
            bitstr = n.node_id.bitstring()
            for e in eigen:
                if bitstr.startswith(e):
                    out[e] = out.get(e, 0) + 1
                    break
        return dict(sorted(out.items()))
