"""FailureDetector: §4.1 ring probing.

Every node periodically probes its eigenstring-ring successor — *"the
node whose nodeId is just larger"* within its group.  After
``probe_misses_to_fail`` consecutive unanswered probes the successor is
declared dead: the detector removes the pointer, reports a LEAVE event
through the dissemination service, and immediately redirects probing to
the next neighbor (the paper's concurrent-failure story).

Probe periods optionally carry seeded jitter (``config.timer_jitter``) so
that thousands of nodes seeded at the same instant do not fire their
probes in lockstep forever.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import NodeContext
from repro.core.events import EventKind, EventRecord
from repro.core.pointer import Pointer
from repro.core.runtime import NodeRuntime
from repro.net.message import Message
from repro.obs import metrics as m
from repro.obs.trace import Span


class FailureDetector:
    """The §4.1 probe loop over the failure-detection ring."""

    def __init__(self, runtime: NodeRuntime, ctx: NodeContext):
        self.runtime = runtime
        self.ctx = ctx

    def start(self) -> None:
        self._schedule_probe(self.ctx.config.probe_interval)

    def on_probe(self, msg: Message) -> None:
        self.runtime.send(
            msg.make_reply("probe-ack", size_bits=self.ctx.config.ack_bits)
        )

    # -- probe loop --------------------------------------------------------

    def _schedule_probe(self, delay: float) -> None:
        self.ctx.track(self.runtime.schedule(self.ctx.jittered(delay), self._probe_tick))

    def _probe_tick(self) -> None:
        ctx = self.ctx
        if not ctx.alive:
            return
        target = ctx.peer_list.ring_successor(ctx.node_id)
        if target is None:
            self._schedule_probe(ctx.config.probe_interval)
            return
        self._probe_target(target, ctx.config.probe_misses_to_fail)

    def _probe_target(
        self, target: Pointer, attempts_left: int, parent=None
    ) -> None:
        ctx = self.ctx
        obs = ctx.obs
        if not ctx.alive:
            return
        ctx.stats.probes_sent += 1
        span: Optional[Span] = None
        if obs.enabled:
            span = obs.start(
                "probe",
                self.runtime.now,
                parent=parent,
                target=str(target.address),
                attempts_left=attempts_left,
            )
        start = self.runtime.now
        msg = Message(
            ctx.address,
            target.address,
            "probe",
            size_bits=ctx.config.heartbeat_bits,
            trace=span.ref() if span is not None else None,
        )

        def replied(_r: Message) -> None:
            obs.registry.observe(m.PROBE_RTT, self.runtime.now - start)
            if span is not None:
                obs.end(span, self.runtime.now)
            self._schedule_probe(ctx.config.probe_interval)

        def timed_out() -> None:
            obs.registry.inc(m.PROBE_TIMEOUTS)
            if span is not None:
                obs.end(span, self.runtime.now, "timeout")
            self._probe_miss(target, attempts_left - 1, span)

        self.runtime.request(
            msg,
            timeout=ctx.config.probe_timeout,
            on_reply=replied,
            on_timeout=timed_out,
        )

    def _probe_miss(
        self, target: Pointer, attempts_left: int, parent=None
    ) -> None:
        ctx = self.ctx
        if not ctx.alive:
            return
        if attempts_left > 0:
            self._probe_target(target, attempts_left, parent)
            return
        # Failure detected: report, remove, and immediately redirect the
        # probing to the next neighbor (§4.1's concurrent-failure story).
        self._declare_failed(target, parent)
        nxt = ctx.peer_list.ring_successor(ctx.node_id)
        if nxt is not None:
            self._probe_target(nxt, ctx.config.probe_misses_to_fail)
        else:
            self._schedule_probe(ctx.config.probe_interval)

    def _declare_failed(self, target: Pointer, parent=None) -> None:
        """Remove ``target`` and announce its obituary (§4.1)."""
        ctx = self.ctx
        obs = ctx.obs
        ctx.stats.failures_detected += 1
        obs.registry.inc(m.FAILURES_DETECTED)
        departed = ctx.peer_list.remove(target.node_id)
        if departed is not None:
            ctx.estimator.observe_departure(departed, self.runtime.now)
        event = EventRecord(
            kind=EventKind.LEAVE,
            subject_id=target.node_id,
            subject_level=target.level,
            subject_address=target.address,
            seq=target.last_event_seq + 1,
            origin_time=self.runtime.now,
        )
        obit = None
        if obs.enabled:
            obit = obs.instant(
                "obituary",
                self.runtime.now,
                parent=parent,
                subject=str(target.address),
                via="ring-probe",
            )
        ctx.report_event(event, trace=obit.ref() if obit is not None else None)

    # -- reconciliation verification (crash recovery) ----------------------

    def verify(self, pointers: list) -> None:
        """Actively probe ``pointers`` outside the ring cadence.

        Used after a crash-recovery rejoin for cached peer-list entries
        that the downloaded snapshot did *not* confirm: each is probed
        ``probe_misses_to_fail`` times and, if silent, removed and
        announced like a ring detection — bounding how long a stale
        pointer carried over from the pre-crash cache can survive.
        """
        for pointer in pointers:
            self._verify_target(pointer, self.ctx.config.probe_misses_to_fail)

    def _verify_target(
        self, target: Pointer, attempts_left: int, parent=None
    ) -> None:
        ctx = self.ctx
        obs = ctx.obs
        if not ctx.alive or ctx.peer_list.get(target.node_id) is None:
            return
        ctx.stats.probes_sent += 1
        span: Optional[Span] = None
        if obs.enabled:
            span = obs.start(
                "probe.verify",
                self.runtime.now,
                parent=parent,
                target=str(target.address),
                attempts_left=attempts_left,
            )
        start = self.runtime.now
        msg = Message(
            ctx.address,
            target.address,
            "probe",
            size_bits=ctx.config.heartbeat_bits,
            trace=span.ref() if span is not None else None,
        )

        def replied(_r: Message) -> None:
            obs.registry.observe(m.PROBE_RTT, self.runtime.now - start)
            if span is not None:
                obs.end(span, self.runtime.now)

        def timed_out() -> None:
            obs.registry.inc(m.PROBE_TIMEOUTS)
            if span is not None:
                obs.end(span, self.runtime.now, "timeout")
            self._verify_miss(target, attempts_left - 1, span)

        self.runtime.request(
            msg,
            timeout=ctx.config.probe_timeout,
            on_reply=replied,
            on_timeout=timed_out,
        )

    def _verify_miss(
        self, target: Pointer, attempts_left: int, parent=None
    ) -> None:
        ctx = self.ctx
        if not ctx.alive or ctx.peer_list.get(target.node_id) is None:
            return
        if attempts_left > 0:
            self._verify_target(target, attempts_left, parent)
            return
        self._declare_failed(target, parent)

    # -- verify-before-believe (DESIGN §16) --------------------------------

    def confirm_dead(self, subject_id, subject_address, on_result) -> None:
        """Probe a reported-dead node before believing its obituary.

        ``on_result(True)`` fires if ``probe_misses_to_fail`` probes of
        ``probe_timeout`` each all go unanswered (the obituary is
        credible); ``on_result(False)`` fires on the first probe ack
        (the subject is demonstrably alive and the obituary forged or
        stale).  Exactly one of the two fires unless this node dies
        mid-verification.
        """
        self._confirm_target(
            subject_id, subject_address,
            self.ctx.config.probe_misses_to_fail, on_result,
        )

    def _confirm_target(
        self, subject_id, subject_address, attempts_left: int, on_result
    ) -> None:
        ctx = self.ctx
        obs = ctx.obs
        if not ctx.alive:
            return
        ctx.stats.probes_sent += 1
        span: Optional[Span] = None
        if obs.enabled:
            span = obs.start(
                "probe.verify",
                self.runtime.now,
                target=str(subject_address),
                attempts_left=attempts_left,
                via="obituary",
            )
        start = self.runtime.now
        msg = Message(
            ctx.address,
            subject_address,
            "probe",
            size_bits=ctx.config.heartbeat_bits,
            trace=span.ref() if span is not None else None,
        )

        def replied(_r: Message) -> None:
            obs.registry.observe(m.PROBE_RTT, self.runtime.now - start)
            if span is not None:
                obs.end(span, self.runtime.now)
            if ctx.alive:
                on_result(False)

        def timed_out() -> None:
            obs.registry.inc(m.PROBE_TIMEOUTS)
            if span is not None:
                obs.end(span, self.runtime.now, "timeout")
            if not ctx.alive:
                return
            if attempts_left > 1:
                self._confirm_target(
                    subject_id, subject_address, attempts_left - 1, on_result
                )
            else:
                on_result(True)

        self.runtime.request(
            msg,
            timeout=ctx.config.probe_timeout,
            on_reply=replied,
            on_timeout=timed_out,
        )
