"""PeerWindow core: the paper's primary contribution.

Public surface:

* identifiers and prefix relations — :class:`NodeId`, :func:`eigenstring`,
  :func:`covers`, :func:`audience_set`;
* state — :class:`Pointer`, :class:`PeerList`, :class:`TopNodeList`;
* the protocol — :class:`PeerWindowNode` (one participant, a thin
  coordinator over the join/levelshift/failure/dissemination/maintenance
  services) and :class:`PeerWindowNetwork` (a whole simulated deployment);
* execution — :class:`NodeRuntime` with the sequential :class:`SimRuntime`
  and the conservative-parallel :class:`PartitionedRuntime`;
* the §2 analytic model — :class:`CostModel`, :func:`estimate_join_level`;
* configuration — :class:`ProtocolConfig`.
"""

from repro.core.analytic import (
    CostModel,
    estimate_join_level,
    expected_error_rate,
    expected_multicast_steps,
)
from repro.core.audience import (
    audience_set,
    correct_peer_list,
    covers,
    in_peer_list,
    same_eigenstring,
    stronger,
)
from repro.core.config import PAPER_COMMON_CONFIG, ProtocolConfig
from repro.core.context import NodeContext
from repro.core.dissemination import MulticastService
from repro.core.errors import (
    ConfigError,
    JoinError,
    MembershipError,
    NodeIdError,
    NotAliveError,
    PeerWindowError,
)
from repro.core.events import EventKind, EventRecord, apply_event
from repro.core.failure import FailureDetector
from repro.core.join import JoinService
from repro.core.levels import LevelController, LevelDecision
from repro.core.levelshift import LevelShiftService
from repro.core.maintenance import MaintenanceService
from repro.core.multicast import MulticastForwarder, TreeNode, plan_tree, tree_stats
from repro.core.node import NodeStats, PeerWindowNode
from repro.core.nodeid import NodeId, eigenstring
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer
from repro.core.protocol import LevelReport, PeerWindowNetwork
from repro.core.refresh import LifetimeEstimator, RefreshManager
from repro.core.runtime import NodeRuntime, PartitionedRuntime, SimRuntime
from repro.core.topnodes import CrossPartTopList, TopNodeList

__all__ = [
    "CostModel",
    "ConfigError",
    "CrossPartTopList",
    "EventKind",
    "EventRecord",
    "FailureDetector",
    "JoinError",
    "JoinService",
    "LevelController",
    "LevelDecision",
    "LevelReport",
    "LevelShiftService",
    "LifetimeEstimator",
    "MaintenanceService",
    "MembershipError",
    "MulticastForwarder",
    "MulticastService",
    "NodeContext",
    "NodeId",
    "NodeIdError",
    "NodeRuntime",
    "NodeStats",
    "NotAliveError",
    "PAPER_COMMON_CONFIG",
    "PartitionedRuntime",
    "PeerList",
    "PeerWindowError",
    "PeerWindowNetwork",
    "PeerWindowNode",
    "Pointer",
    "ProtocolConfig",
    "RefreshManager",
    "SimRuntime",
    "TopNodeList",
    "TreeNode",
    "apply_event",
    "audience_set",
    "correct_peer_list",
    "covers",
    "eigenstring",
    "estimate_join_level",
    "expected_error_rate",
    "expected_multicast_steps",
    "in_peer_list",
    "plan_tree",
    "same_eigenstring",
    "stronger",
    "tree_stats",
]
