"""Shared per-node protocol state: the :class:`NodeContext`.

The four protocol services (join, failure detection, dissemination,
maintenance) and the :class:`~repro.core.node.PeerWindowNode` coordinator
all operate on one context object per node — identity, level, peer list,
top-node lists, estimators, counters, and the per-subject event-sequence
memory.  Keeping the state in one place (instead of spread across the
services) preserves the invariant the monolithic node had implicitly:
every service sees every state change immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Set

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.events import EventKind, EventRecord
from repro.core.levels import LevelController
from repro.core.nodeid import NodeId, eigenstring
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer
from repro.core.refresh import LifetimeEstimator, RefreshManager
from repro.core.runtime import NodeRuntime
from repro.core.topnodes import CrossPartTopList, TopNodeList
from repro.obs.trace import NodeObs
from repro.sim.engine import EventHandle


@dataclass
class NodeStats:
    """Per-node protocol counters (reset never; read by the harness)."""

    events_applied: int = 0
    events_originated: int = 0
    mcasts_received: int = 0
    mcast_duplicates: int = 0
    probes_sent: int = 0
    failures_detected: int = 0
    reports_sent: int = 0
    reports_failed: int = 0
    reports_served: int = 0
    level_raises: int = 0
    level_lowers: int = 0
    refreshes_sent: int = 0
    downloads_served: int = 0
    joins_assisted: int = 0


class NodeContext:
    """Everything one node's services share.

    ``report_event`` is wired by the coordinator after the dissemination
    service exists (services are constructed in dependency order, and the
    report path is the one capability every other service needs).
    """

    def __init__(
        self,
        runtime: NodeRuntime,
        config: ProtocolConfig,
        node_id: NodeId,
        address: Hashable,
        threshold_bps: float,
        rng: np.random.Generator,
        attached_info: Any = None,
        obs: NodeObs = None,
    ):
        self.runtime = runtime
        self.config = config
        self.node_id = node_id
        self.address = address
        self.threshold_bps = float(threshold_bps)
        self.rng = rng
        self.attached_info = attached_info
        #: This node's observability handle (tracer + metrics registry).
        #: Disabled by default: every instrumentation site guards on
        #: ``obs.enabled`` / the registry's internal flag, so the layer
        #: costs one attribute check per potential span when off.
        self.obs = obs if obs is not None else NodeObs(address, enabled=False)

        self.level = 0
        self.alive = False
        self.is_top = False
        self.seq = 0
        self.raising = False
        #: True while a crash-recovery rejoin is in flight: the §4.3
        #: download then *reconciles* against the stale cached peer list
        #: instead of starting from an empty one (see JoinService).
        self.recovering = False

        self.peer_list = PeerList(node_id, 0)
        self.top_list = TopNodeList(config.top_list_size)
        self.cross_parts = CrossPartTopList(config.top_list_size)
        self.estimator = LifetimeEstimator(prior_mean=3600.0)
        self.refresh_mgr = RefreshManager(config, self.estimator)
        self.controller = LevelController(config, threshold_bps)
        self.stats = NodeStats()
        #: Addresses subscribed to copies of every multicast this (top)
        #: node originates — the part-merge bridge (DESIGN.md §8).
        self.bridge_subscribers: Dict[int, Pointer] = {}
        #: ``(requester_address, served_time)`` for recently served §4.3
        #: downloads: events applied within ``config.download_grace`` of a
        #: serve are copied to the requester, who is in nobody's audience
        #: until its JOIN multicast lands (DESIGN.md §8).
        self.recent_downloads: List[tuple] = []
        self.seen_events: Dict[int, int] = {}  # subject id value -> max seq
        #: Events relayed upward as a stale "top" (§4.5), subject id value
        #: -> max seq.  A separate map from ``seen_events`` on purpose:
        #: marking a relayed event *seen* would make the later tree
        #: delivery look like a duplicate, which is acked without
        #: forwarding — black-holing the subtree routed through us.
        self.relayed_reports: Dict[int, int] = {}
        self.endpoint = None  # set by the coordinator after registration
        self.loop_handles: List[EventHandle] = []
        #: Dissemination entry point, wired by the coordinator.  Accepts
        #: an optional ``trace=`` keyword (a span context) so the caller's
        #: operation — an obituary, a join, a level shift — continues as
        #: one causal trace through the report/multicast path.
        self.report_event: Callable[..., None] = _unwired
        #: Verify-before-believe hook (DESIGN §16), wired by the
        #: coordinator to ``FailureDetector.confirm_dead``.  ``None``
        #: means no detector is attached and obituaries pass unverified.
        self.confirm_dead: Optional[Callable[..., None]] = None
        #: Refuted-obituary strikes per accuser address, and the set of
        #: accusers quarantined after ``config.quarantine_strikes``.
        self.obit_strikes: Dict[Hashable, int] = {}
        self.obit_quarantine: Set[Hashable] = set()
        #: Obituary verifications in flight: subject id value -> list of
        #: ``(accuser_or_None, proceed)`` continuations.  Concurrent
        #: accusations about one subject settle on a single probe chain.
        self.obit_pending: Dict[int, List[tuple]] = {}
        #: When this node last served a §4.3 get-top, for the
        #: ``config.join_throttle_interval`` admission throttle.
        self.last_join_served: float = float("-inf")

    # -- identity helpers --------------------------------------------------

    @property
    def eigenstring(self) -> str:
        return eigenstring(self.node_id, self.level)

    def self_pointer(self) -> Pointer:
        return Pointer(
            node_id=self.node_id,
            address=self.address,
            level=self.level,
            attached_info=self.attached_info,
            last_refresh=self.runtime.now,
            last_event_seq=self.seq,
        )

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def make_event(self, kind: EventKind) -> EventRecord:
        return EventRecord(
            kind=kind,
            subject_id=self.node_id,
            subject_level=self.level,
            subject_address=self.address,
            seq=self.next_seq(),
            origin_time=self.runtime.now,
            attached_info=self.attached_info,
        )

    def part_level(self) -> int:
        """The believed part-prefix length: our level if we are a top node,
        else the strongest level in our top-node list."""
        if self.is_top:
            return self.level
        known = self.top_list.min_level()
        return known if known is not None else 0

    # -- timer bookkeeping -------------------------------------------------

    def track(self, handle: EventHandle) -> None:
        """Track a loop timer for cancellation at departure, pruning dead
        handles so long sessions do not accumulate them."""
        self.loop_handles.append(handle)
        if len(self.loop_handles) > 64:
            self.loop_handles = [h for h in self.loop_handles if h.active]

    def cancel_loops(self) -> None:
        for handle in self.loop_handles:
            handle.cancel()
        self.loop_handles.clear()

    def jittered(self, delay: float) -> float:
        """Apply the configured timer jitter (``config.timer_jitter``, a
        fraction of the delay) using this node's seeded stream.  Zero
        jitter — the default — draws nothing, so existing deterministic
        runs are byte-identical."""
        j = self.config.timer_jitter
        if j <= 0.0:
            return delay
        return delay * (1.0 + j * (2.0 * float(self.rng.random()) - 1.0))


def _unwired(event: EventRecord, **_kw: Any) -> None:  # pragma: no cover - wiring guard
    raise RuntimeError("NodeContext.report_event used before wiring")
