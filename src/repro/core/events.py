"""State-changing events and their application to peer lists.

§2: *"a state-changing event, e.g., a node's joining, leaving or
information changing, will be multicast to all the nodes ... whose peer
list contains (or should contain) a pointer to the changing node."*

Events carry a per-subject monotone sequence number so receivers can
discard out-of-order deliveries (the Internet-asynchrony caveat of §4.6);
REFRESH events (§4.6) re-announce the subject's current state and also
bump the pointer's ``last_refresh`` clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Hashable, Optional

from repro.core.audience import in_peer_list
from repro.core.nodeid import NodeId
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer


class EventKind(enum.Enum):
    JOIN = "join"
    LEAVE = "leave"
    LEVEL_CHANGE = "level_change"
    INFO_CHANGE = "info_change"
    REFRESH = "refresh"


@dataclass(frozen=True)
class EventRecord:
    """One state-changing event about ``subject_id``."""

    kind: EventKind
    subject_id: NodeId
    subject_level: int
    subject_address: Hashable
    seq: int
    origin_time: float
    attached_info: Any = None

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError("seq must be >= 0")
        if self.subject_level < 0 or self.subject_level > self.subject_id.bits:
            raise ValueError("invalid subject level")


def apply_event(
    peer_list: PeerList,
    event: EventRecord,
    now: float,
    owner_id: Optional[NodeId] = None,
) -> bool:
    """Apply ``event`` to ``peer_list``; returns True if state changed.

    Rules:

    * events about nodes outside the owner's prefix are ignored (they can
      reach us transiently during our own level shift);
    * events older than the pointer's ``last_event_seq`` are ignored;
      **note** that a LEAVE removes the pointer and with it this sequence
      memory, so a *later-delivered older* event (a stale JOIN racing the
      LEAVE) would resurrect the entry — callers must keep their own
      per-subject max-seq filter, as :class:`~repro.core.node.PeerWindowNode`
      does with its ``_seen_events`` map (the tombstone is held there,
      bounded by the node's own lifetime);
    * JOIN / LEVEL_CHANGE / INFO_CHANGE / REFRESH upsert the pointer with
      the event's level and info, stamping ``last_refresh = now``;
    * LEAVE removes the pointer;
    * events about the owner itself are ignored (a node is authoritative
      about its own state).
    """
    subject = event.subject_id
    if owner_id is not None and subject.value == owner_id.value:
        return False
    if not in_peer_list(peer_list.owner_id, peer_list.owner_level, subject):
        return False
    existing = peer_list.get(subject)
    if existing is not None and event.seq <= existing.last_event_seq:
        return False

    if event.kind is EventKind.LEAVE:
        if existing is None:
            return False
        peer_list.remove(subject)
        return True

    if existing is None:
        pointer = Pointer(
            node_id=subject,
            address=event.subject_address,
            level=event.subject_level,
            attached_info=event.attached_info,
            seen_join_time=(now if event.kind is EventKind.JOIN else None),
            last_refresh=now,
            last_event_seq=event.seq,
        )
        peer_list.add(pointer)
        return True

    existing.level = event.subject_level
    existing.attached_info = event.attached_info
    existing.last_refresh = now
    existing.last_event_seq = event.seq
    if event.kind is EventKind.JOIN and existing.seen_join_time is None:
        existing.seen_join_time = now
    return True
