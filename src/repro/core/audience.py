"""Peer-list membership and audience-set predicates.

The protocol's central insight (§2): whether node A's peer list should
contain node B — equivalently, whether A is in B's *audience set* — is a
pure function of their identifiers and A's level:

    ``covers(A.id, A.level, B.id)  :=  A.id and B.id agree on A's first
    A.level bits``

so membership never needs to be stored.  This module is that single
predicate plus the derived set computations used by the ground-truth
checker, the multicast planner, and the worked figure-1/figure-2 examples.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.core.nodeid import NodeId
from repro.core.errors import NodeIdError


def covers(holder_id: NodeId, holder_level: int, subject_id: NodeId) -> bool:
    """True iff a ``holder_level``-level node with ``holder_id`` keeps (or
    should keep) a pointer to ``subject_id``.

    Equivalently: the holder's eigenstring is a prefix of the subject's id,
    i.e. the holder is in the subject's audience set.
    """
    if holder_level < 0 or holder_level > holder_id.bits:
        raise NodeIdError(f"invalid holder level {holder_level}")
    return holder_id.shares_prefix(subject_id, holder_level)


def in_peer_list(owner_id: NodeId, owner_level: int, other_id: NodeId) -> bool:
    """Whether ``other_id`` belongs in the peer list of the given owner.

    This is the same relation as :func:`covers` — stated separately so call
    sites read in the direction they mean.
    """
    return covers(owner_id, owner_level, other_id)


def same_eigenstring(
    a_id: NodeId, a_level: int, b_id: NodeId, b_level: int
) -> bool:
    """Whether two nodes share an eigenstring (same level, same prefix).

    Nodes with the same eigenstring have identical peer lists (peer-list
    property 1) and form one failure-detection ring (§4.1).
    """
    return a_level == b_level and a_id.shares_prefix(b_id, a_level)


def stronger(a_id: NodeId, a_level: int, b_id: NodeId, b_level: int) -> bool:
    """Peer-list property 2: node *a* is stronger than node *b* iff *a*'s
    eigenstring is a **proper** prefix of *b*'s eigenstring."""
    return a_level < b_level and a_id.shares_prefix(b_id, a_level)


def audience_set(
    subject_id: NodeId,
    members: Iterable[Tuple[NodeId, int]],
) -> List[Tuple[NodeId, int]]:
    """Materialize the audience set of ``subject_id`` from an iterable of
    ``(node_id, level)`` pairs (ground truth / worked examples; the
    protocol itself never materializes audiences)."""
    return [
        (nid, lvl) for nid, lvl in members if covers(nid, lvl, subject_id)
    ]


def correct_peer_list(
    owner_id: NodeId,
    owner_level: int,
    members: Iterable[Tuple[NodeId, int]],
) -> List[Tuple[NodeId, int]]:
    """The ground-truth peer list: every live node sharing the owner's
    first ``owner_level`` bits (used by the error-rate checker)."""
    return [
        (nid, lvl)
        for nid, lvl in members
        if in_peer_list(owner_id, owner_level, nid)
    ]
