"""The peer list: a node's collection of pointers.

Backing structure: a dict (id value -> :class:`~repro.core.pointer.Pointer`)
for O(1) lookup plus a bisect-maintained sorted id array for the two
order-dependent queries the protocol makes:

* the failure-detection ring successor — *"the node whose nodeId is just
  larger"* within the owner's eigenstring group (§4.1, figure 3);
* deterministic iteration for multicast candidate scans.

Inserts/deletes are O(n) array moves; peer lists in the detailed engine
are at most a few thousand entries and churn events are comparatively
rare, so this beats tree structures in practice (see the engine benchmark
``bench_peerlist_ops``).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator, List, Optional

from repro.core.audience import in_peer_list
from repro.core.errors import MembershipError
from repro.core.nodeid import NodeId
from repro.core.pointer import Pointer


class PeerList:
    """Pointer container owned by one node.

    The owner's own pointer is stored too (a node trivially "collects"
    itself; keeping it uniform simplifies ring arithmetic).
    """

    def __init__(self, owner_id: NodeId, owner_level: int):
        self.owner_id = owner_id
        self.owner_level = owner_level
        self._by_id: dict[int, Pointer] = {}
        self._sorted_ids: List[int] = []

    # -- basic container ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id.value in self._by_id

    def __iter__(self) -> Iterator[Pointer]:
        """Pointers in ascending id order (deterministic)."""
        by_id = self._by_id
        return (by_id[v] for v in self._sorted_ids)

    def get(self, node_id: NodeId) -> Optional[Pointer]:
        return self._by_id.get(node_id.value)

    def ids(self) -> List[int]:
        """Sorted id values (snapshot copy)."""
        return list(self._sorted_ids)

    def add(self, pointer: Pointer, strict: bool = True) -> bool:
        """Insert or update a pointer.

        With ``strict`` (default) the pointer must belong in this peer list
        — share the owner's first ``owner_level`` bits — otherwise
        :class:`MembershipError` is raised; the protocol never legitimately
        stores out-of-prefix pointers.  Returns True if the entry is new.
        """
        if strict and not in_peer_list(self.owner_id, self.owner_level, pointer.node_id):
            raise MembershipError(
                f"pointer {pointer.node_id!r} outside owner prefix "
                f"(owner level {self.owner_level})"
            )
        value = pointer.node_id.value
        is_new = value not in self._by_id
        self._by_id[value] = pointer
        if is_new:
            insort(self._sorted_ids, value)
        return is_new

    def remove(self, node_id: NodeId) -> Optional[Pointer]:
        """Remove and return the pointer, or None if absent."""
        pointer = self._by_id.pop(node_id.value, None)
        if pointer is not None:
            idx = bisect_left(self._sorted_ids, node_id.value)
            # idx is exact: the value was present.
            self._sorted_ids.pop(idx)
        return pointer

    def clear(self) -> None:
        self._by_id.clear()
        self._sorted_ids.clear()

    # -- level changes ----------------------------------------------------------

    def retarget(self, new_level: int) -> List[Pointer]:
        """Change the owner's level, evicting pointers that fall outside the
        new (longer) prefix.  Returns the evicted pointers.  Lowering the
        level value (raising the level) never evicts; the caller is
        responsible for downloading the newly-covered pointers (§4.3).
        """
        if new_level < 0 or new_level > self.owner_id.bits:
            raise MembershipError(f"invalid level {new_level}")
        self.owner_level = new_level
        evicted = [
            p
            for p in self._by_id.values()
            if not in_peer_list(self.owner_id, new_level, p.node_id)
        ]
        for p in evicted:
            self.remove(p.node_id)
        return evicted

    # -- ring / group queries ------------------------------------------------

    def group_members(self, level: Optional[int] = None) -> List[Pointer]:
        """Pointers in the owner's eigenstring group: same level as the
        owner (all peer-list entries already share the prefix)."""
        lvl = self.owner_level if level is None else level
        return [p for p in self if p.level == lvl]

    def ring_successor(self, of_id: NodeId) -> Optional[Pointer]:
        """The failure-detection target: the group member whose id is
        *just larger* than ``of_id``, wrapping around (§4.1).  Returns None
        when the group has no other member."""
        group = self.group_members()
        candidates = [p for p in group if p.node_id.value != of_id.value]
        if not candidates:
            return None
        larger = [p for p in candidates if p.node_id.value > of_id.value]
        pool = larger if larger else candidates
        return min(pool, key=lambda p: p.node_id.value)

    # -- multicast candidate scan ---------------------------------------------

    def multicast_candidates(
        self,
        local_id: NodeId,
        subject_id: NodeId,
        bit: int,
    ) -> List[Pointer]:
        """Candidates for multicast step ``bit`` (§4.2, figure 4):
        audience members of ``subject_id`` in this peer list whose ids share
        the local node's first ``bit`` bits and differ at bit ``bit``.

        The subject itself and the local node are excluded.
        """
        out: List[Pointer] = []
        local_value = local_id.value
        subject_value = subject_id.value
        for p in self._by_id.values():
            pid = p.node_id
            if pid.value == local_value or pid.value == subject_value:
                continue
            if not pid.shares_prefix(local_id, bit):
                continue
            if pid.bit(bit) == local_id.bit(bit):
                continue
            # Audience membership: p's eigenstring is a prefix of subject.
            if not pid.shares_prefix(subject_id, p.level):
                continue
            out.append(p)
        return out

    def strongest(self, pointers: List[Pointer]) -> Optional[Pointer]:
        """Highest-level (minimum level value) pointer; ties broken by the
        smaller id for determinism.  None for an empty list."""
        if not pointers:
            return None
        return min(pointers, key=lambda p: (p.level, p.node_id.value))
