"""Accuracy improvement: refresh and expiry (§4.6).

Errors in peer lists come in two kinds — *absent* pointers (a join
multicast that never arrived) and *stale* pointers (a leave that never
arrived).  Both are self-limiting individually, but accumulate system-wide,
so PeerWindow adds a refreshing mechanism:

* every node measures the lifetime of the nodes in its peer list and keeps
  a per-level average ``LT_i``;
* an ``l``-level node multicasts its own state every ``2 * LT_l``;
* an ``m``-level pointer that has not been refreshed for ``3 * LT_m`` is
  removed from the peer list without probing.

*"In practice, most nodes never perform such refreshing multicast because
their lifetimes are much shorter than twice the average lifetime"* — a
property the integration tests verify.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import ProtocolConfig
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer


class LifetimeEstimator:
    """Running per-level mean of observed node lifetimes.

    A lifetime sample is taken when a LEAVE event (or failure detection)
    removes a pointer whose join was itself observed (``seen_join_time``
    is known) — exactly the information a real node has.
    """

    def __init__(self, prior_mean: float = 3600.0, prior_weight: float = 1.0):
        if prior_mean <= 0 or prior_weight < 0:
            raise ValueError("invalid prior")
        self.prior_mean = prior_mean
        self.prior_weight = prior_weight
        self._sum: Dict[int, float] = {}
        self._count: Dict[int, int] = {}

    def observe(self, level: int, lifetime: float) -> None:
        if lifetime < 0:
            raise ValueError("lifetime must be >= 0")
        self._sum[level] = self._sum.get(level, 0.0) + lifetime
        self._count[level] = self._count.get(level, 0) + 1

    def observe_departure(self, pointer: Pointer, now: float) -> None:
        """Take a sample from a departed pointer, if its join was observed."""
        if pointer.seen_join_time is not None:
            self.observe(pointer.level, now - pointer.seen_join_time)

    def mean(self, level: int) -> float:
        """``LT_level``: the posterior mean (prior keeps early estimates
        sane before samples accumulate)."""
        s = self._sum.get(level, 0.0) + self.prior_mean * self.prior_weight
        c = self._count.get(level, 0) + self.prior_weight
        return s / c

    def samples(self, level: int) -> int:
        return self._count.get(level, 0)


class RefreshManager:
    """Drives a node's refresh multicasts and pointer expiry sweeps."""

    def __init__(
        self,
        config: ProtocolConfig,
        estimator: Optional[LifetimeEstimator] = None,
    ):
        self.config = config
        self.estimator = estimator if estimator is not None else LifetimeEstimator()
        self.refreshes_sent = 0
        self.expired_removed = 0

    def refresh_due_interval(self, own_level: int) -> float:
        """Seconds between this node's own refresh multicasts: ``2 * LT_l``."""
        return self.config.refresh_multiple * self.estimator.mean(own_level)

    def expiry_age(self, pointer_level: int) -> float:
        """Maximum un-refreshed age for a pointer: ``3 * LT_m``."""
        return self.config.expiry_multiple * self.estimator.mean(pointer_level)

    def sweep(self, peer_list: PeerList, now: float) -> List[Pointer]:
        """Remove pointers whose refresh age exceeds ``3 * LT_m``.

        Returns the expired pointers.  (No probing happens — §4.6 removes
        them *"directly ... without explicit probing"*.)
        """
        expired = [
            p
            for p in peer_list
            if now - p.last_refresh > self.expiry_age(p.level)
        ]
        for p in expired:
            peer_list.remove(p.node_id)
        self.expired_removed += len(expired)
        return expired
