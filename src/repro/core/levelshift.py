"""LevelShiftService: the autonomic level controller's commit paths.

The §2 controller decides *when* to shift (``LevelController.decide`` on
the measured input rate); this service owns *how*.  Lowering (l → l+1,
smaller window) commits locally — the node already holds every pointer
the shorter list needs — but may split a part, handing the diverging
group members to the cross-part list (DESIGN.md §8).  Raising (l → l−1,
bigger window) reuses the §4.3 ``download`` path to fetch the pointers
the longer prefix was hiding, and may merge parts, bridging into the
sibling part's multicast stream until it merges too.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import NodeContext
from repro.core.events import EventKind
from repro.core.levels import LevelDecision
from repro.core.nodeid import eigenstring
from repro.core.pointer import Pointer
from repro.core.runtime import NodeRuntime
from repro.net.message import Message
from repro.obs import metrics as m
from repro.obs.trace import Span


class LevelShiftService:
    """§2 + §4.3: periodic level checks, lowering, raising, part merge."""

    def __init__(self, runtime: NodeRuntime, ctx: NodeContext):
        self.runtime = runtime
        self.ctx = ctx

    def start_level_loop(self) -> None:
        self.ctx.track(
            self.runtime.schedule(self.ctx.config.level_check_interval, self.level_tick)
        )

    def level_tick(self) -> None:
        ctx = self.ctx
        if not ctx.alive:
            return
        measured = ctx.endpoint.ewma_in.rate(self.runtime.now)
        decision = ctx.controller.decide(ctx.level, measured)
        if decision is LevelDecision.LOWER:
            self.commit_lower()
        elif decision is LevelDecision.RAISE and not ctx.raising:
            new_level = max(ctx.level - 1, 0)
            if not ctx.is_top and new_level < ctx.part_level():
                new_level = ctx.part_level()  # clamp: become a top first
            if new_level < ctx.level:
                self.initiate_raise(new_level)
        self.start_level_loop()

    def commit_lower(self) -> None:
        ctx = self.ctx
        if ctx.level >= ctx.node_id.bits:
            return
        old_level = ctx.level
        was_top = ctx.is_top
        group = [
            p
            for p in ctx.peer_list.group_members()
            if p.node_id.value != ctx.node_id.value
        ]
        # Group members that still share our (longer) prefix stay in our
        # part and — being at the old, stronger level — are now our tops.
        same_side = [
            p for p in group if p.node_id.bit(old_level) == ctx.node_id.bit(old_level)
        ]
        siblings = [
            p for p in group if p.node_id.bit(old_level) != ctx.node_id.bit(old_level)
        ]
        ctx.level = old_level + 1
        ctx.peer_list.retarget(ctx.level)
        ctx.stats.level_lowers += 1
        ctx.obs.registry.inc(m.LEVEL_LOWER)
        shift = None
        if ctx.obs.enabled:
            shift = ctx.obs.instant(
                "level.lower",
                self.runtime.now,
                old_level=old_level,
                new_level=ctx.level,
                was_top=was_top,
            )
        if was_top and same_side:
            # We were a top node, so our eigenstring group was the set of
            # our part's tops; the members staying on our side of the new
            # bit are now strictly stronger than us — our new tops.
            ctx.is_top = False
            ctx.top_list.merge(
                [p.copy(last_refresh=self.runtime.now) for p in same_side]
            )
        # A non-top node keeps its existing top-node list (its group
        # members were ordinary peers, not tops); a top node with no
        # same-side group members stays the top of the split-off part.
        if was_top and ctx.is_top and siblings:
            # The part split at this level: the diverging members are the
            # sibling part's tops (DESIGN.md §8).
            sibling_prefix = eigenstring(siblings[0].node_id, ctx.level)
            ctx.cross_parts.merge(
                sibling_prefix,
                [p.copy(last_refresh=self.runtime.now) for p in siblings],
            )
        own = ctx.peer_list.get(ctx.node_id)
        if own is not None:
            own.level = ctx.level
        ctx.report_event(
            ctx.make_event(EventKind.LEVEL_CHANGE),
            trace=shift.ref() if shift is not None else None,
        )

    def initiate_raise(self, new_level: int) -> None:
        """§4.3: download the missing pointers from a stronger node, then
        commit the level change and report it."""
        ctx = self.ctx
        if new_level >= ctx.level or ctx.raising:
            return
        source = self._raise_source(new_level)
        if source is None:
            return
        ctx.raising = True
        span: Optional[Span] = None
        if ctx.obs.enabled:
            span = ctx.obs.start(
                "level.raise",
                self.runtime.now,
                old_level=ctx.level,
                new_level=new_level,
                source=str(source.address),
            )
        msg = Message(
            ctx.address,
            source.address,
            "download",
            payload=(ctx.node_id, new_level),
            size_bits=ctx.config.ack_bits,
            trace=span.ref() if span is not None else None,
        )
        self.runtime.request(
            msg,
            timeout=ctx.config.report_timeout,
            on_reply=lambda reply: self._commit_raise(
                new_level, source, reply.payload, span
            ),
            on_timeout=lambda: self._abort_raise(source, span),
        )

    def _raise_source(self, new_level: int) -> Optional[Pointer]:
        ctx = self.ctx
        # A node whose eigenstring is a prefix of our id with level <= new
        # level covers everything we need.
        stronger = [
            p
            for p in ctx.peer_list
            if p.level <= new_level
            and p.node_id.value != ctx.node_id.value
            and p.node_id.shares_prefix(ctx.node_id, p.level)
        ]
        if stronger:
            return ctx.peer_list.strongest(stronger)
        if not ctx.is_top:
            tops = ctx.top_list.pointers()
            usable = [p for p in tops if p.level <= new_level]
            if usable:
                return min(usable, key=lambda p: (p.level, p.node_id.value))
            return None
        # Part merge: pull the sibling part from a cross-part top node.
        sibling_prefix = ctx.node_id.prefix_bits(ctx.level - 1) + str(
            1 - ctx.node_id.bit(ctx.level - 1)
        )
        for prefix in ctx.cross_parts.parts():
            if prefix.startswith(sibling_prefix) or sibling_prefix.startswith(prefix):
                candidates = ctx.cross_parts.for_part(prefix)
                if candidates:
                    return candidates[0]
        return None

    def _commit_raise(
        self,
        new_level: int,
        source: Pointer,
        payload: tuple,
        span: Optional[Span] = None,
    ) -> None:
        ctx = self.ctx
        ctx.raising = False
        if not ctx.alive or new_level >= ctx.level:
            if span is not None:
                ctx.obs.end(span, self.runtime.now, "aborted")
            return
        pointers, tops = payload
        was_top = ctx.is_top
        ctx.level = new_level
        ctx.peer_list.retarget(new_level)
        for p in pointers:
            if (
                p.node_id.value != ctx.node_id.value
                and p.node_id.shares_prefix(ctx.node_id, new_level)
            ):
                if ctx.peer_list.get(p.node_id) is None:
                    ctx.peer_list.add(p.copy(last_refresh=self.runtime.now))
        own = ctx.peer_list.get(ctx.node_id)
        if own is not None:
            own.level = ctx.level
        ctx.stats.level_raises += 1
        ctx.obs.registry.inc(m.LEVEL_RAISE)
        part_level = ctx.top_list.min_level()
        if part_level is None or new_level <= part_level:
            ctx.is_top = True
        if was_top and source.level >= new_level:
            # We just merged above our old part: subscribe to the sibling
            # part's event stream through its top node (bridge); the top
            # propagates the subscription across its group.
            sub = Message(
                ctx.address,
                source.address,
                "bridge-subscribe",
                payload=(ctx.self_pointer(), True),
                size_bits=ctx.config.pointer_bits,
                trace=span.ref() if span is not None else None,
            )
            self.runtime.send(sub)
        if span is not None:
            ctx.obs.end(span, self.runtime.now)
        ctx.report_event(
            ctx.make_event(EventKind.LEVEL_CHANGE),
            trace=span.ref() if span is not None else None,
        )

    def _abort_raise(self, source: Pointer, span: Optional[Span] = None) -> None:
        self.ctx.raising = False
        if span is not None:
            self.ctx.obs.end(span, self.runtime.now, "timeout")
        self.ctx.peer_list.remove(source.node_id)
