"""Multi-seed replication and confidence intervals.

Single simulation runs carry sampling noise (Poisson churn, random ids,
random attachment points).  Production-grade reproduction reports
replicated results:

* :func:`replicate` — run a scenario across seeds, collect any metric;
* :class:`MetricSummary` — mean, standard deviation, and a Student-t
  confidence interval (small replication counts, so normal-approximation
  intervals would be too tight);
* :func:`compare` — paired comparison of two configurations across the
  same seeds (the right way to A/B a protocol knob: common random
  numbers cancel workload noise).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as sps

from repro.experiments.scalable import ScalableParams, ScalableResult, ScalableSim
from repro.workloads.lifetime import GnutellaLifetimeDistribution


@dataclass(frozen=True)
class MetricSummary:
    """Replicated-metric summary with a t-interval."""

    name: str
    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"{self.name}: {self.mean:.5g} ± {self.half_width():.2g} "
            f"({self.confidence:.0%} CI, n={self.n})"
        )


def summarize_metric(
    name: str, values: Sequence[float], confidence: float = 0.95
) -> MetricSummary:
    """Student-t confidence interval for a replicated metric."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no values to summarize")
    mean = float(arr.mean())
    if arr.size == 1:
        return MetricSummary(name, 1, mean, 0.0, mean, mean, confidence)
    std = float(arr.std(ddof=1))
    sem = std / np.sqrt(arr.size)
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return MetricSummary(
        name, int(arr.size), mean, std, mean - t * sem, mean + t * sem, confidence
    )


MetricFn = Callable[[ScalableResult], float]

#: Metrics the replication harness extracts by default.
DEFAULT_METRICS: Dict[str, MetricFn] = {
    "mean_error_rate": lambda r: r.mean_error_rate,
    "frac_level0": lambda r: r.fraction_at_level(0),
    "n_levels": lambda r: float(r.n_levels()),
    "mean_tree_depth": lambda r: r.mean_tree_depth,
    "root_out_degree": lambda r: r.mean_root_out_degree,
}


def replicate(
    params: ScalableParams,
    seeds: Sequence[int],
    metrics: Optional[Dict[str, MetricFn]] = None,
    confidence: float = 0.95,
) -> Dict[str, MetricSummary]:
    """Run the scenario once per seed; summarize each metric."""
    if not seeds:
        raise ValueError("need at least one seed")
    metrics = metrics if metrics is not None else DEFAULT_METRICS
    collected: Dict[str, List[float]] = {name: [] for name in metrics}
    for seed in seeds:
        p = replace(params, seed=int(seed))
        result = ScalableSim(
            p, lifetime_dist=GnutellaLifetimeDistribution(lifetime_rate=p.lifetime_rate)
        ).run()
        for name, fn in metrics.items():
            collected[name].append(fn(result))
    return {
        name: summarize_metric(name, values, confidence)
        for name, values in collected.items()
    }


def compare(
    params_a: ScalableParams,
    params_b: ScalableParams,
    seeds: Sequence[int],
    metric: MetricFn,
    confidence: float = 0.95,
) -> Tuple[MetricSummary, float]:
    """Paired A/B comparison under common random numbers.

    Returns the summary of per-seed differences (b - a) and the paired
    t-test p-value.  A CI excluding zero (equivalently p < 1-confidence)
    means the knob's effect is real, not workload noise.
    """
    if len(seeds) < 2:
        raise ValueError("paired comparison needs >= 2 seeds")
    diffs = []
    for seed in seeds:
        pa = replace(params_a, seed=int(seed))
        pb = replace(params_b, seed=int(seed))
        ra = ScalableSim(
            pa, lifetime_dist=GnutellaLifetimeDistribution(lifetime_rate=pa.lifetime_rate)
        ).run()
        rb = ScalableSim(
            pb, lifetime_dist=GnutellaLifetimeDistribution(lifetime_rate=pb.lifetime_rate)
        ).run()
        diffs.append(metric(rb) - metric(ra))
    summary = summarize_metric("difference (b - a)", diffs, confidence)
    arr = np.asarray(diffs)
    if np.allclose(arr, arr[0]):
        p_value = 0.0 if arr[0] != 0 else 1.0
    else:
        p_value = float(sps.ttest_1samp(arr, 0.0).pvalue)
    return summary, p_value
