"""Plain-text table rendering for benchmark/experiment output.

The benches print the same rows the paper's figures plot; these helpers
keep the formatting uniform (and testable) across all of them.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    text = f"\n== {title} ==\n" + format_table(headers, rows)
    print(text)
    return text


def format_metrics(snapshot: dict) -> str:
    """Render a :meth:`~repro.core.protocol.PeerWindowNetwork.metrics_snapshot`
    as one aligned ``kind | name | value`` table (dists expanded to their
    count/mean/min/max rows)."""
    from repro.obs.metrics import flatten_snapshot

    return format_table(["kind", "name", "value"], flatten_snapshot(snapshot))
