"""Named experiment scenarios (§5.1-§5.3).

Each scenario is a :class:`~repro.experiments.scalable.ScalableParams`
preset.  ``FULL`` presets are the paper's own parameters (100,000 nodes);
``FAST`` presets are scaled down so the complete figure suite runs in
minutes on a laptop — benchmarks default to FAST and accept an
environment switch (``REPRO_FULL=1``) to run at paper scale.
"""

from __future__ import annotations

import os
from typing import List

from repro.experiments.scalable import ScalableParams

#: The paper's common PeerWindow (§5.1).
COMMON_FULL = ScalableParams(n_target=100_000, duration_s=1800.0, warmup_s=600.0)

#: Scaled-down common case for CI-speed runs.
COMMON_FAST = ScalableParams(n_target=20_000, duration_s=900.0, warmup_s=300.0)

#: §5.2 scalability sweep (figure 9/10 x-axis).
SCALE_SWEEP_FULL: List[int] = [5_000, 10_000, 20_000, 50_000, 100_000]
SCALE_SWEEP_FAST: List[int] = [2_000, 5_000, 10_000, 20_000]

#: §5.3 adaptivity sweep (figure 11/12 x-axis).
LIFETIME_RATES_FULL: List[float] = [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0]
LIFETIME_RATES_FAST: List[float] = [0.1, 0.5, 1.0, 2.0, 10.0]


def full_scale() -> bool:
    """Whether to run at the paper's 100,000-node scale (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "no")


def common_params(**overrides) -> ScalableParams:
    base = COMMON_FULL if full_scale() else COMMON_FAST
    if overrides:
        from dataclasses import replace

        return replace(base, **overrides)
    return base


def scale_sweep() -> List[int]:
    return list(SCALE_SWEEP_FULL if full_scale() else SCALE_SWEEP_FAST)


def lifetime_rates() -> List[float]:
    return list(LIFETIME_RATES_FULL if full_scale() else LIFETIME_RATES_FAST)
