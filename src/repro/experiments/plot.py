"""Terminal plots: the figures, drawn where the benches run.

Pure-text rendering (no plotting dependency, per the offline constraint):

* :func:`bar_chart` — horizontal bars for categorical rows (level
  distributions, bandwidth by level);
* :func:`line_chart` — a braille-free ASCII scatter/line for sweeps
  (error vs scale, error vs lifetime rate), with optional log-y;
* :func:`sparkline` — one-row trend glyphs for time series.

All return strings (callers print), so tests can assert on geometry.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"
_BAR_GLYPH = "█"


def bar_chart(
    rows: Sequence[Tuple[object, float]],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart; one row per (label, value), bars scaled to
    the maximum value."""
    if width < 1:
        raise ValueError("width must be >= 1")
    rows = list(rows)
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    label_w = max(len(str(label)) for label, _ in rows)
    peak = max(value for _, value in rows)
    lines = [title] if title else []
    for label, value in rows:
        if value < 0:
            raise ValueError("bar_chart values must be non-negative")
        n = int(round(value / peak * width)) if peak > 0 else 0
        lines.append(f"{str(label).rjust(label_w)} | {_BAR_GLYPH * n} {value:g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-row trend: each value mapped to an eighth-block glyph."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return _SPARK_GLYPHS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[idx])
    return "".join(out)


def line_chart(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
    log_y: bool = False,
) -> str:
    """ASCII scatter of (x, y) points on a width x height grid, with axis
    extents annotated.  ``log_y`` plots log10(y) (figure 12's scale)."""
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")
    pts = [(float(x), float(y)) for x, y in points]
    if not pts:
        return f"{title}\n(no data)" if title else "(no data)"
    if log_y:
        if any(y <= 0 for _, y in pts):
            raise ValueError("log_y requires positive y values")
        pts = [(x, math.log10(y)) for x, y in pts]
    xs = [x for x, _ in pts]
    ys = [y for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in pts:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    y_top = f"{(10 ** y_hi if log_y else y_hi):g}"
    y_bot = f"{(10 ** y_lo if log_y else y_lo):g}"
    lines = [title] if title else []
    for i, row_cells in enumerate(grid):
        prefix = y_top if i == 0 else (y_bot if i == height - 1 else "")
        lines.append(f"{prefix.rjust(10)} |{''.join(row_cells)}")
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11}{x_lo:<15g}{'':^{max(width - 30, 0)}}{x_hi:>15g}")
    return "\n".join(lines)


def level_distribution_chart(
    fractions: Sequence[Tuple[int, float]], title: str = "node distribution by level"
) -> str:
    """Figure-5-style chart from (level, fraction) rows."""
    return bar_chart(
        [(f"L{lvl}", frac) for lvl, frac in fractions], title=title
    )
