"""Experiment harness: the §5 evaluation, reproduced.

* :mod:`~repro.experiments.scalable` — the 100,000-node engine built on
  the paper's own centralized-bookkeeping trick.
* :mod:`~repro.experiments.figures` — one entry point per paper figure
  (5-12), returning the rows the figure plots.
* :mod:`~repro.experiments.scenario` — named parameter presets
  (``REPRO_FULL=1`` switches benches to paper scale).
* :mod:`~repro.experiments.ablation` — design-choice ablations.
* :mod:`~repro.experiments.report` — ASCII table rendering for benches.
"""

from repro.experiments.figures import (
    SweepPoint,
    clear_cache,
    fig5_node_distribution,
    fig6_peer_list_sizes,
    fig7_error_rates,
    fig8_bandwidth,
    fig9_scalability_levels,
    fig10_scalability_error,
    fig11_adaptivity_levels,
    fig12_adaptivity_error,
    run_scenario,
)
from repro.experiments.predict import (
    predict_error_rate,
    predict_level_distribution,
    predict_n_levels,
)
from repro.experiments.plot import (
    bar_chart,
    level_distribution_chart,
    line_chart,
    sparkline,
)
from repro.experiments.report import format_table, print_table
from repro.experiments.stats import MetricSummary, compare, replicate, summarize_metric
from repro.experiments.scalable import (
    LevelRow,
    ScalableParams,
    ScalableResult,
    ScalableSim,
    binomial_broadcast,
)
from repro.experiments.scenario import (
    COMMON_FAST,
    COMMON_FULL,
    common_params,
    full_scale,
    lifetime_rates,
    scale_sweep,
)

__all__ = [
    "COMMON_FAST",
    "COMMON_FULL",
    "LevelRow",
    "ScalableParams",
    "ScalableResult",
    "ScalableSim",
    "SweepPoint",
    "binomial_broadcast",
    "clear_cache",
    "common_params",
    "fig10_scalability_error",
    "fig11_adaptivity_levels",
    "fig12_adaptivity_error",
    "fig5_node_distribution",
    "fig6_peer_list_sizes",
    "fig7_error_rates",
    "fig8_bandwidth",
    "fig9_scalability_levels",
    "MetricSummary",
    "bar_chart",
    "compare",
    "level_distribution_chart",
    "line_chart",
    "sparkline",
    "format_table",
    "full_scale",
    "predict_error_rate",
    "predict_level_distribution",
    "predict_n_levels",
    "replicate",
    "summarize_metric",
    "lifetime_rates",
    "print_table",
    "run_scenario",
    "scale_sweep",
]
