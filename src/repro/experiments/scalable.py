"""The scalable (100,000-node) PeerWindow engine.

This is our build of the paper's own measurement device (§5): *"we record
all the correct peer lists in a centralized data structure, and only
record erroneous items in nodes' individual data structures ... making it
possible to run the whole experiment in memory"*.

Representation
--------------

Nodes live in NumPy slot arrays (id, level, threshold, alive, join time).
Peer lists are **implicit**: the size of an l-level node's list is the
number of live nodes sharing its l-bit prefix, maintained in per-level
prefix population counters (``_counts[l]``, one ``int32`` cell per l-bit
prefix).  Per-level *membership* counters (``_level_counts[l]``) count only
the level-l nodes per prefix; they give audience compositions for the
error and bandwidth accounting.

Dynamics
--------

* Joins arrive in a Poisson process at rate ``n_target / mean_lifetime``
  (§5.1); each join samples a lifetime and a bandwidth from the Gnutella
  distributions and schedules the leave.
* Each node's level is the §2 cost model's stationary point for the
  *measured* system event rate; a periodic re-level sweep moves nodes
  whose affordable level changed (counted as level-change events, §4.3).
* Refresh multicasts fire for nodes that outlive twice the average
  lifetime (§4.6) — rare by construction, as the paper observes.

Accuracy accounting
-------------------

A leave keeps one entry **stale** in every audience member's list from
the departure until that member's delivery time; a join leaves one entry
**absent** symmetrically.  Per event we add
``delay(l) * |level-l audience|`` stale/absent entry-seconds to level l,
where ``delay(l)`` combines failure-detection latency (for leaves), the
report leg, and the multicast tree depth at level l times the per-hop
cost (1 s processing + mean underlay latency).  Per-level tree depths and
sender out-degrees are *measured*, not assumed: the engine periodically
runs the exact §4.2 binomial dissemination over the real audience of a
random subject (vectorized; see :func:`binomial_broadcast`).

Dividing by the integrated entry-seconds (sampled each measurement tick)
gives exactly the paper's per-level peer-list error rate (figures 7, 10,
12); the same per-event bookkeeping accumulates input/output bits for
figure 8.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.transit_stub import TransitStubParams, TransitStubTopology
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.bandwidth_dist import (
    GnutellaBandwidthDistribution,
    threshold_from_bandwidth,
)
from repro.workloads.lifetime import GnutellaLifetimeDistribution, LifetimeDistribution


# ---------------------------------------------------------------------------
# Vectorized exact multicast dissemination
# ---------------------------------------------------------------------------


def binomial_broadcast(
    ids: np.ndarray,
    levels: np.ndarray,
    root_pos: int,
    id_bits: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the §4.2 dissemination over an explicit audience.

    Parameters
    ----------
    ids, levels:
        Audience member ids (uint64) and levels, including the root.
    root_pos:
        Index of the multicast root (the top node) within the arrays.
    id_bits:
        Id width.

    Returns
    -------
    depths:
        Per-member delivery depth (hops from the root; root gets 0).
        Members the dissemination cannot reach keep ``-1`` (must not
        happen for well-formed audiences; tests assert full coverage).
    sender_counts:
        Per-member number of multicast messages sent (out-degree).
    """
    n = ids.shape[0]
    depths = np.full(n, -1, dtype=np.int32)
    sender_counts = np.zeros(n, dtype=np.int32)
    if n == 0:
        return depths, sender_counts
    depths[root_pos] = 0
    all_idx = np.arange(n)
    rest = all_idx[all_idx != root_pos]
    # Work stack: (root position, depth, start bit, member positions)
    stack: List[Tuple[int, int, int, np.ndarray]] = [(root_pos, 0, 0, rest)]
    while stack:
        rpos, depth, start_bit, members = stack.pop()
        rid = ids[rpos]
        idx = members
        for b in range(start_bit, id_bits):
            if idx.size == 0:
                break
            shift = np.uint64(id_bits - 1 - b)
            bits = (ids[idx] >> shift) & np.uint64(1)
            rbit = (rid >> shift) & np.uint64(1)
            diff_mask = bits != rbit
            if not diff_mask.any():
                continue
            diff = idx[diff_mask]
            idx = idx[~diff_mask]
            # Choose the strongest candidate (min level, then min id).
            lv = levels[diff]
            strongest = lv == lv.min()
            cand = diff[strongest]
            target = cand[np.argmin(ids[cand])]
            depths[target] = depth + 1
            sender_counts[rpos] += 1
            rest_members = diff[diff != target]
            if rest_members.size:
                stack.append((int(target), depth + 1, b + 1, rest_members))
            else:
                depths[target] = depth + 1
        # Members left in idx share every bit with the root — duplicates
        # cannot occur (ids are unique), so idx must be empty here.
    return depths, sender_counts


# ---------------------------------------------------------------------------
# Parameters and reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalableParams:
    """Scenario parameters; defaults are the paper's common case (§5.1)."""

    n_target: int = 100_000
    id_bits: int = 48  # uniform ids; 48 bits ≫ log2(N), fits uint64 math
    lifetime_rate: float = 1.0
    duration_s: float = 1800.0  # measured window after warm-up
    warmup_s: float = 400.0
    seed: int = 0
    max_level: int = 18
    event_bits: int = 1000
    ack_bits: int = 100
    heartbeat_bits: int = 500
    probe_interval_s: float = 30.0
    probe_timeout_s: float = 5.0
    processing_delay_s: float = 1.0
    relevel_interval_s: float = 60.0
    measure_interval_s: float = 30.0
    tree_sample_interval_s: float = 120.0
    rate_window_s: float = 300.0
    use_transit_stub: bool = True
    threshold_fraction: float = 0.01
    threshold_floor_bps: float = 500.0

    def __post_init__(self) -> None:
        if self.n_target < 2:
            raise ValueError("n_target must be >= 2")
        if not 8 <= self.id_bits <= 62:
            raise ValueError("id_bits must be in [8, 62] for uint64 math")
        if self.lifetime_rate <= 0:
            raise ValueError("lifetime_rate must be positive")
        if self.max_level < 1 or self.max_level > self.id_bits:
            raise ValueError("max_level must be in [1, id_bits]")


@dataclass
class LevelRow:
    """Per-level results — one row of figures 5-8."""

    level: int
    population: int
    fraction: float
    mean_list_size: float
    min_list_size: float
    max_list_size: float
    error_rate: float
    stale_rate: float  # leave-staleness share of the error
    absent_rate: float  # join-absence share of the error
    in_bps: float
    out_bps: float


@dataclass
class ScalableResult:
    """Everything the figures need from one run."""

    params: ScalableParams
    final_population: int
    measured_event_rate: float
    rows: List[LevelRow]
    mean_error_rate: float
    joins: int = 0
    leaves: int = 0
    level_changes: int = 0
    refreshes: int = 0
    mean_tree_depth: float = 0.0
    max_tree_depth: int = 0
    mean_root_out_degree: float = 0.0

    def level_histogram(self) -> Dict[int, int]:
        return {r.level: r.population for r in self.rows}

    def fraction_at_level(self, level: int) -> float:
        for r in self.rows:
            if r.level == level:
                return r.fraction
        return 0.0

    def n_levels(self) -> int:
        return len([r for r in self.rows if r.population > 0])


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ScalableSim:
    """Centralized-bookkeeping PeerWindow simulation (100k-node capable)."""

    def __init__(
        self,
        params: Optional[ScalableParams] = None,
        lifetime_dist: Optional[LifetimeDistribution] = None,
        bandwidth_dist: Optional[GnutellaBandwidthDistribution] = None,
    ):
        self.p = params if params is not None else ScalableParams()
        self.streams = RandomStreams(self.p.seed)
        self.sim = Simulator()
        self.lifetimes = (
            lifetime_dist
            if lifetime_dist is not None
            else GnutellaLifetimeDistribution(lifetime_rate=self.p.lifetime_rate)
        )
        self.bandwidths = (
            bandwidth_dist if bandwidth_dist is not None else GnutellaBandwidthDistribution()
        )
        # Underlay latency: mean pairwise latency over the transit-stub
        # model (or the paper's 0.5 s/step assumption when disabled).
        if self.p.use_transit_stub:
            topo = TransitStubTopology(TransitStubParams(), seed=self.p.seed)
            self.mean_link_latency = float(np.mean(topo.latency_sample(4096)))
        else:
            self.mean_link_latency = 0.5
        self._hop_delay = self.p.processing_delay_s + self.mean_link_latency

        # Slot arrays --------------------------------------------------
        cap = int(self.p.n_target * 1.5) + 16
        self._cap = cap
        self.ids = np.zeros(cap, dtype=np.uint64)
        self.levels = np.zeros(cap, dtype=np.int16)
        self.thresholds = np.zeros(cap, dtype=np.float64)
        self.alive = np.zeros(cap, dtype=bool)
        self.join_times = np.zeros(cap, dtype=np.float64)
        self._free: List[int] = list(range(cap - 1, -1, -1))
        self._slot_of: Dict[int, int] = {}  # id value -> slot

        # Prefix population counters -----------------------------------
        L = self.p.max_level
        self._counts = [np.zeros(1 << min(l, L), dtype=np.int32) for l in range(L + 1)]
        self._level_counts = [
            np.zeros(1 << min(l, L), dtype=np.int32) for l in range(L + 1)
        ]

        # Measurement accumulators -------------------------------------
        self.stale_seconds = np.zeros(L + 1)
        self.absent_seconds = np.zeros(L + 1)
        self.entry_seconds = np.zeros(L + 1)
        self.bits_in = np.zeros(L + 1)
        self.bits_out = np.zeros(L + 1)
        self.node_seconds = np.zeros(L + 1)  # population integrated over time
        self._measuring = False
        self._measure_t0 = 0.0

        # Tree-depth calibration ----------------------------------------
        self._depth_by_level = np.zeros(L + 1)
        self._depth_samples = np.zeros(L + 1)
        self._sends_by_level = np.zeros(L + 1)
        self._send_samples = 0
        self._tree_depths_all: List[float] = []
        self._tree_max_depth = 0
        self._root_out_degrees: List[int] = []

        # Event-rate estimator -----------------------------------------
        self._event_times: deque = deque()
        self._rate_estimate = 0.0

        self.joins = 0
        self.leaves = 0
        self.level_changes = 0
        self.refreshes = 0

        self._rng_life = self.streams.get("lifetime")
        self._rng_bw = self.streams.get("bandwidth")
        self._rng_ids = self.streams.get("ids")
        self._rng_misc = self.streams.get("misc")

    # -- population mechanics ------------------------------------------------

    @property
    def population(self) -> int:
        return len(self._slot_of)

    def _random_id(self) -> int:
        while True:
            value = int(self._rng_ids.integers(0, 1 << self.p.id_bits, dtype=np.uint64))
            if value not in self._slot_of:
                return value

    def _affordable_level(self, threshold: float) -> int:
        """§2 stationary level for the measured event rate."""
        rate = self._rate_estimate
        if rate <= 0:
            return 0
        cost0 = rate * self.p.event_bits
        if cost0 <= threshold:
            return 0
        return min(int(math.ceil(math.log2(cost0 / threshold))), self.p.max_level)

    def _prefix(self, value: int, l: int) -> int:
        return value >> (self.p.id_bits - min(l, self.p.max_level)) if l else 0

    def _counts_update(self, value: int, delta: int) -> None:
        bits = self.p.id_bits
        for l in range(1, self.p.max_level + 1):
            self._counts[l][value >> (bits - l)] += delta
        self._counts[0][0] += delta

    def _add_node(self, value: int, level: int, threshold: float, now: float) -> int:
        slot = self._free.pop()
        self.ids[slot] = value
        self.levels[slot] = level
        self.thresholds[slot] = threshold
        self.alive[slot] = True
        self.join_times[slot] = now
        self._slot_of[value] = slot
        self._counts_update(value, +1)
        l = min(level, self.p.max_level)
        self._level_counts[l][self._prefix(value, l)] += 1
        return slot

    def _remove_node(self, value: int) -> None:
        slot = self._slot_of.pop(value)
        self.alive[slot] = False
        self._counts_update(value, -1)
        l = min(int(self.levels[slot]), self.p.max_level)
        self._level_counts[l][self._prefix(value, l)] -= 1
        self._free.append(slot)

    # -- event-rate estimator ------------------------------------------------

    def _record_event(self) -> None:
        now = self.sim.now
        times = self._event_times
        times.append(now)
        cutoff = now - self.p.rate_window_s
        while times and times[0] < cutoff:
            times.popleft()
        if now > 0:
            window = min(self.p.rate_window_s, now) or 1.0
            self._rate_estimate = len(times) / window

    # -- error/bandwidth accounting ---------------------------------------------

    def _delay_at_level(self, l: int, detection: float) -> float:
        """Expected event-propagation delay to level-l audience members."""
        if self._depth_samples[l] > 0:
            depth = self._depth_by_level[l] / self._depth_samples[l]
        else:
            depth = max(1.0, math.log2(max(self.population, 2)) * 0.5)
        report_leg = self.mean_link_latency + self.p.processing_delay_s
        return detection + report_leg + depth * self._hop_delay

    def _account_event(self, subject_value: int, detection: float, stale: bool) -> None:
        """Charge one join/leave event's staleness/absence plus traffic."""
        if not self._measuring:
            return
        bits = self.p.id_bits
        for l in range(0, self.p.max_level + 1):
            prefix = subject_value >> (bits - l) if l else 0
            audience_l = int(self._level_counts[l][prefix])
            if audience_l == 0:
                continue
            delay = self._delay_at_level(l, detection)
            if stale:
                self.stale_seconds[l] += delay * audience_l
            else:
                self.absent_seconds[l] += delay * audience_l
        self._account_traffic(subject_value)

    def _account_traffic(self, subject_value: int) -> None:
        """Charge one multicast's bandwidth (any event kind)."""
        if not self._measuring:
            return
        bits = self.p.id_bits
        for l in range(0, self.p.max_level + 1):
            prefix = subject_value >> (bits - l) if l else 0
            audience_l = int(self._level_counts[l][prefix])
            if audience_l == 0:
                continue
            # Each audience member receives the 1000-bit event and acks it.
            self.bits_in[l] += audience_l * self.p.event_bits
            self.bits_out[l] += audience_l * self.p.ack_bits
        # Sender side of the multicast: distribute the tree's sends over
        # levels using the calibrated per-level out-degree profile.
        if self._send_samples > 0:
            self.bits_out += (
                self._sends_by_level / self._send_samples * self.p.event_bits
            )

    # -- simulation events ---------------------------------------------------------

    def _schedule_join(self) -> None:
        rate = self.p.n_target / self.lifetimes.mean
        gap = float(self._rng_misc.exponential(1.0 / rate))
        self.sim.schedule(gap, self._do_join)

    def _do_join(self) -> None:
        now = self.sim.now
        value = self._random_id()
        bw = float(self.bandwidths.sample(self._rng_bw))
        threshold = float(
            threshold_from_bandwidth(
                bw, self.p.threshold_fraction, self.p.threshold_floor_bps
            )
        )
        level = self._affordable_level(threshold)
        self._add_node(value, level, threshold, now)
        lifetime = float(self.lifetimes.sample(self._rng_life))
        self.sim.schedule(lifetime, self._do_leave, value)
        self.joins += 1
        self._record_event()
        # Join events create *absent* pointers until delivery.
        self._account_event(value, detection=0.0, stale=False)
        # §4.6 refresh: only nodes outliving twice the average lifetime
        # ever refresh (most never do).
        refresh_period = 2.0 * self.lifetimes.mean
        if lifetime > refresh_period:
            self.sim.schedule(refresh_period, self._do_refresh, value, refresh_period)
        self._schedule_join()

    def _do_leave(self, value: int) -> None:
        if value not in self._slot_of:
            return
        detection = self.p.probe_interval_s / 2.0 + self.p.probe_timeout_s
        self._account_event(value, detection=detection, stale=True)
        self._remove_node(value)
        self.leaves += 1
        self._record_event()

    def _do_refresh(self, value: int, period: float) -> None:
        if value not in self._slot_of:
            return
        self.refreshes += 1
        self._record_event()
        # A refresh re-announces existing state: traffic, but no error.
        self._account_traffic(value)
        self.sim.schedule(period, self._do_refresh, value, period)

    def _relevel_tick(self) -> None:
        """Autonomic level adjustment sweep (vectorized §4.3).

        Mirrors :class:`~repro.core.levels.LevelController`'s hysteresis:
        a node lowers (l -> l+1) only when its current cost exceeds its
        threshold, and raises (l -> l-1) only when the cost falls below
        half the threshold — the dead zone keeps levels from flapping as
        the measured rate fluctuates.
        """
        rate = self._rate_estimate
        if rate > 0 and self.population:
            mask = self.alive
            slots_all = np.flatnonzero(mask)
            thresholds = self.thresholds[slots_all]
            current = self.levels[slots_all].astype(np.float64)
            cost_now = rate * self.p.event_bits / np.exp2(current)
            lower = cost_now > thresholds
            raise_ = (cost_now < 0.5 * thresholds) & (current > 0)
            desired = self.levels[slots_all].astype(np.int16)
            desired[lower] += 1
            desired[raise_] -= 1
            desired = np.clip(desired, 0, self.p.max_level)
            changed = desired != self.levels[slots_all]
            if changed.any():
                slots = slots_all[changed]
                new_levels = desired[changed]
                for slot, new in zip(slots, new_levels):
                    value = int(self.ids[slot])
                    old = min(int(self.levels[slot]), self.p.max_level)
                    nl = min(int(new), self.p.max_level)
                    self._level_counts[old][self._prefix(value, old)] -= 1
                    self._level_counts[nl][self._prefix(value, nl)] += 1
                    self.levels[slot] = new
                    self.level_changes += 1
                    # A level change multicasts (traffic) but does not make
                    # pointers stale or absent, and it is deliberately NOT
                    # fed into the controller's rate estimate: letting the
                    # controller count its own adjustments creates a
                    # positive feedback loop (rate up -> levels down ->
                    # more changes).  The real protocol avoids this with
                    # per-node EWMA smoothing; the sweep achieves the same
                    # fixed point by tracking churn (join/leave/refresh)
                    # only.
                    self._account_traffic(value)
        self.sim.schedule(self.p.relevel_interval_s, self._relevel_tick)

    def _measure_tick(self) -> None:
        """Integrate entry-seconds, node-seconds and probe traffic."""
        if self._measuring:
            dt = self.p.measure_interval_s
            bits = self.p.id_bits
            for l in range(self.p.max_level + 1):
                slots = self._level_slots(l)
                if slots.size == 0:
                    continue
                prefixes = (
                    (self.ids[slots] >> np.uint64(bits - l)).astype(np.int64)
                    if l
                    else np.zeros(slots.size, dtype=np.int64)
                )
                sizes = self._counts[l][prefixes]
                self.entry_seconds[l] += float(sizes.sum()) * dt
                self.node_seconds[l] += slots.size * dt
                # Ring probing (§4.1): one heartbeat per probe interval per
                # node, plus the ack.
                probes = slots.size * dt / self.p.probe_interval_s
                self.bits_out[l] += probes * self.p.heartbeat_bits
                self.bits_in[l] += probes * (self.p.heartbeat_bits + self.p.ack_bits)
        self.sim.schedule(self.p.measure_interval_s, self._measure_tick)

    def _level_slots(self, l: int) -> np.ndarray:
        mask = self.alive & (
            np.minimum(self.levels, self.p.max_level) == l
        )
        return np.flatnonzero(mask)

    def _tree_sample_tick(self) -> None:
        """Calibrate per-level depths/out-degrees with one exact tree."""
        if self.population >= 4:
            self._sample_tree()
        self.sim.schedule(self.p.tree_sample_interval_s, self._tree_sample_tick)

    def _sample_tree(self) -> None:
        bits = self.p.id_bits
        # Random live subject.
        values = list(self._slot_of.keys())
        subject = values[int(self._rng_misc.integers(0, len(values)))]
        subject_u = np.uint64(subject)
        mask = self.alive.copy()
        # Audience: alive nodes whose eigenstring is a prefix of subject.
        lv = np.minimum(self.levels, self.p.max_level).astype(np.uint64)
        shifts = np.uint64(bits) - lv
        agree = ((self.ids ^ subject_u) >> shifts) == 0
        mask &= agree
        idx = np.flatnonzero(mask)
        if idx.size < 2:
            return
        ids = self.ids[idx]
        levels = self.levels[idx].astype(np.int32)
        # Root: the strongest audience member (a top node), ties by id.
        order = np.lexsort((ids, levels))
        root_pos = int(order[0])
        depths, senders = binomial_broadcast(ids, levels, root_pos, bits)
        reached = depths >= 0
        for l in range(self.p.max_level + 1):
            sel = reached & (np.minimum(levels, self.p.max_level) == l)
            if sel.any():
                self._depth_by_level[l] += float(depths[sel].mean())
                self._depth_samples[l] += 1
            sends_l = senders[np.minimum(levels, self.p.max_level) == l].sum()
            self._sends_by_level[l] += float(sends_l)
        self._send_samples += 1
        self._tree_depths_all.append(float(depths[reached].mean()))
        self._tree_max_depth = max(self._tree_max_depth, int(depths.max()))
        self._root_out_degrees.append(int(senders[root_pos]))

    # -- lifecycle ----------------------------------------------------------------

    def seed_population(self) -> None:
        """Create the initial ``n_target`` nodes (the paper's step one)."""
        n = self.p.n_target
        # Analytic initial rate: joins + leaves ≈ 2N/L.
        self._rate_estimate = 2.0 * n / self.lifetimes.mean
        bws = np.asarray(self.bandwidths.sample(self._rng_bw, n))
        thresholds = threshold_from_bandwidth(
            bws, self.p.threshold_fraction, self.p.threshold_floor_bps
        )
        # Residual (stationary) lifetimes, so the population neither dips
        # nor surges after seeding.
        lifetimes = self.lifetimes.sample_residual(self._rng_life, n)
        for i in range(n):
            value = self._random_id()
            level = self._affordable_level(float(thresholds[i]))
            self._add_node(value, level, float(thresholds[i]), 0.0)
            self.sim.schedule(float(lifetimes[i]), self._do_leave, value)
            refresh_period = 2.0 * self.lifetimes.mean
            if lifetimes[i] > refresh_period:
                self.sim.schedule(refresh_period, self._do_refresh, value, refresh_period)

    def run(self) -> ScalableResult:
        """Seed, warm up, measure, and report."""
        self.seed_population()
        self._schedule_join()
        self.sim.schedule(self.p.relevel_interval_s, self._relevel_tick)
        self.sim.schedule(self.p.measure_interval_s, self._measure_tick)
        self.sim.schedule(1.0, self._tree_sample_tick)
        # Warm-up: run without accounting so the level distribution and
        # the rate estimator reach steady state first.
        self.sim.run(until=self.p.warmup_s)
        self._measuring = True
        self._measure_t0 = self.sim.now
        self.sim.run(until=self.p.warmup_s + self.p.duration_s)
        return self._report()

    # -- reporting ----------------------------------------------------------------

    def _report(self) -> ScalableResult:
        rows: List[LevelRow] = []
        pop = self.population
        bits = self.p.id_bits
        total_err_num = 0.0
        total_err_den = 0.0
        for l in range(self.p.max_level + 1):
            slots = self._level_slots(l)
            count = int(slots.size)
            if count == 0 and self.node_seconds[l] == 0:
                continue
            if count:
                prefixes = (
                    (self.ids[slots] >> np.uint64(bits - l)).astype(np.int64)
                    if l
                    else np.zeros(count, dtype=np.int64)
                )
                sizes = self._counts[l][prefixes].astype(float)
            else:
                sizes = np.zeros(1)
            err_num = self.stale_seconds[l] + self.absent_seconds[l]
            err_den = self.entry_seconds[l]
            error_rate = err_num / err_den if err_den > 0 else 0.0
            stale_rate = self.stale_seconds[l] / err_den if err_den > 0 else 0.0
            absent_rate = self.absent_seconds[l] / err_den if err_den > 0 else 0.0
            total_err_num += err_num
            total_err_den += err_den
            ns = self.node_seconds[l]
            rows.append(
                LevelRow(
                    level=l,
                    population=count,
                    fraction=count / pop if pop else 0.0,
                    mean_list_size=float(sizes.mean()),
                    min_list_size=float(sizes.min()),
                    max_list_size=float(sizes.max()),
                    error_rate=float(error_rate),
                    stale_rate=float(stale_rate),
                    absent_rate=float(absent_rate),
                    in_bps=float(self.bits_in[l] / ns) if ns > 0 else 0.0,
                    out_bps=float(self.bits_out[l] / ns) if ns > 0 else 0.0,
                )
            )
        mean_error = total_err_num / total_err_den if total_err_den > 0 else 0.0
        return ScalableResult(
            params=self.p,
            final_population=pop,
            measured_event_rate=self._rate_estimate,
            rows=rows,
            mean_error_rate=float(mean_error),
            joins=self.joins,
            leaves=self.leaves,
            level_changes=self.level_changes,
            refreshes=self.refreshes,
            mean_tree_depth=(
                float(np.mean(self._tree_depths_all)) if self._tree_depths_all else 0.0
            ),
            max_tree_depth=self._tree_max_depth,
            mean_root_out_degree=(
                float(np.mean(self._root_out_degrees)) if self._root_out_degrees else 0.0
            ),
        )
