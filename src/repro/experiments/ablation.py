"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation: each ablation flips one design
decision and measures the consequence the design argument predicts.

* **Probe interval** (§4.1): failure-detection latency dominates leave
  staleness, so the peer-list error rate should scale almost linearly
  with the probe interval.
* **Strongest-first multicast targets** (§4.2): choosing the
  highest-level candidate is what makes the tree *complete*; a
  random-candidate policy (over the same knowledge) must lose audience
  members whenever it hands a subtree to a relay that does not know all
  of it.
* **Hysteresis width** (§2/§4.3 controller): shrinking the raise/lower
  dead zone makes levels flap (counted as level-change events).
* **Threshold floor** (§5.1): the 500 bps floor determines the deepest
  populated level; halving it pushes weak nodes one level deeper.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.scalable import (
    ScalableParams,
    ScalableSim,
    binomial_broadcast,
)

def ablate_probe_interval(
    intervals_s: List[float],
    base: Optional[ScalableParams] = None,
) -> List[Tuple[float, float]]:
    """(probe interval, mean error rate) — error should grow ~linearly."""
    base = base or ScalableParams(n_target=10_000, duration_s=600.0, warmup_s=200.0)
    out = []
    for interval in intervals_s:
        params = replace(base, probe_interval_s=float(interval))
        result = ScalableSim(params).run()
        out.append((float(interval), result.mean_error_rate))
    return out


def random_target_broadcast(
    ids: np.ndarray,
    levels: np.ndarray,
    root_pos: int,
    id_bits: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """The §4.2 dissemination with *random* (not strongest) target choice,
    respecting each relay's actual knowledge: a relay at level l only
    knows members sharing its first l bits, so candidates outside its
    knowledge are invisible to it.  Used to demonstrate why
    strongest-first matters (coverage loss)."""
    n = ids.shape[0]
    depths = np.full(n, -1, dtype=np.int32)
    senders = np.zeros(n, dtype=np.int32)
    if n == 0:
        return depths, senders
    depths[root_pos] = 0
    rest = np.arange(n)
    rest = rest[rest != root_pos]
    stack = [(root_pos, 0, 0, rest)]
    while stack:
        rpos, depth, start_bit, members = stack.pop()
        rid = ids[rpos]
        rlevel = int(levels[rpos])
        idx = members
        for b in range(start_bit, id_bits):
            if idx.size == 0:
                break
            shift = np.uint64(id_bits - 1 - b)
            bits = (ids[idx] >> shift) & np.uint64(1)
            rbit = (rid >> shift) & np.uint64(1)
            diff_mask = bits != rbit
            if not diff_mask.any():
                continue
            diff = idx[diff_mask]
            idx = idx[~diff_mask]
            # Knowledge restriction: the relay only sees members sharing
            # its first `rlevel` bits.
            if rlevel > 0:
                kshift = np.uint64(id_bits - rlevel)
                known = (ids[diff] >> kshift) == (rid >> kshift)
            else:
                known = np.ones(diff.size, dtype=bool)
            visible = diff[known]
            if visible.size == 0:
                continue  # the whole subtree is lost (coverage hole)
            target = visible[int(rng.integers(0, visible.size))]
            depths[target] = depth + 1
            senders[rpos] += 1
            rest_members = diff[diff != target]
            if rest_members.size:
                stack.append((int(target), depth + 1, b + 1, rest_members))
    return depths, senders


def ablate_target_policy(
    n_members: int = 4096,
    id_bits: int = 32,
    seed: int = 0,
    level_weights: Optional[List[float]] = None,
) -> Dict[str, float]:
    """Coverage of strongest-first vs random target choice on one
    synthetic audience.  Returns coverage fractions per policy."""
    rng = np.random.default_rng(seed)
    subject = np.uint64(rng.integers(0, 1 << id_bits, dtype=np.uint64))
    # Default: a deep hierarchy (few strong nodes) — the regime where a
    # wrong relay choice actually strands subtrees.
    weights = level_weights if level_weights is not None else [0.02, 0.05, 0.13, 0.3, 0.5]
    probs = np.array(weights) / sum(weights)
    ids: List[int] = []
    levels: List[int] = []
    seen = set()
    while len(ids) < n_members:
        lvl = int(rng.choice(len(probs), p=probs))
        # Member id must share the subject's first `lvl` bits.
        suffix = int(rng.integers(0, 1 << (id_bits - lvl))) if lvl < id_bits else 0
        prefix = (int(subject) >> (id_bits - lvl)) << (id_bits - lvl) if lvl else 0
        value = prefix | suffix
        if value in seen:
            continue
        seen.add(value)
        ids.append(value)
        levels.append(lvl)
    ids_arr = np.array(ids, dtype=np.uint64)
    levels_arr = np.array(levels, dtype=np.int32)
    root_pos = int(np.lexsort((ids_arr, levels_arr))[0])

    depths_s, _ = binomial_broadcast(ids_arr, levels_arr, root_pos, id_bits)
    depths_r, _ = random_target_broadcast(
        ids_arr, levels_arr, root_pos, id_bits, np.random.default_rng(seed + 1)
    )
    return {
        "strongest_coverage": float((depths_s >= 0).mean()),
        "random_coverage": float((depths_r >= 0).mean()),
    }


def ablate_hysteresis(
    raise_fractions: List[float],
    base: Optional[ScalableParams] = None,
) -> List[Tuple[float, int]]:
    """(raise fraction, level changes) — narrow dead zones flap.

    The scalable engine's sweep hard-codes the 0.5 raise fraction, so this
    ablation drives the pure :class:`~repro.core.levels.LevelController`
    against a noisy measured-cost series.
    """
    from repro.core.config import ProtocolConfig
    from repro.core.levels import LevelController, LevelDecision

    rng = np.random.default_rng(7)
    out = []
    for frac in raise_fractions:
        config = ProtocolConfig(raise_fraction=float(frac))
        ctl = LevelController(config, threshold_bps=1000.0)
        level = 3
        changes = 0
        # Measured cost hovers right at the threshold with 30% noise —
        # the hostile regime for a controller.
        for _ in range(500):
            cost = 1000.0 / (2.0**level) * 8.0 * float(rng.uniform(0.7, 1.3))
            decision = ctl.decide(level, cost)
            if decision is LevelDecision.RAISE:
                level -= 1
                changes += 1
            elif decision is LevelDecision.LOWER:
                level += 1
                changes += 1
        out.append((float(frac), changes))
    return out


def ablate_warmup(
    extra_levels: List[int],
    n_nodes: int = 64,
    seed: int = 11,
) -> List[Tuple[int, float, float, int]]:
    """(warm-up extra levels, join completion time, time to full list,
    initial download size) on the detailed engine.

    §4.3: a joiner *"can also first set a low level so as to start working
    in a relatively short period, and then ask stronger nodes for a larger
    peer list"*.  The trade-off measured here: more warm-up levels mean a
    smaller initial download (faster to start serving) but a longer climb
    to the full peer list.
    """
    from repro.core.config import ProtocolConfig
    from repro.core.protocol import PeerWindowNetwork

    out = []
    for extra in extra_levels:
        config = ProtocolConfig(
            id_bits=16,
            probe_interval=5.0,
            probe_timeout=1.0,
            multicast_ack_timeout=1.0,
            report_timeout=2.0,
            level_check_interval=1e6,  # isolate the warm-up path
            multicast_processing_delay=0.1,
            warmup_extra_levels=int(extra),
        )
        net = PeerWindowNetwork(config=config, master_seed=seed)
        keys = net.seed_nodes([1e9] * n_nodes)
        net.run(until=10.0)
        t0 = net.sim.now
        done = {}
        new = net.add_node(1e9, bootstrap=keys[0],
                           on_done=lambda ok: done.setdefault("t", net.sim.now))
        node = net.node(new)
        initial_size = None
        full_at = None
        while net.sim.now < t0 + 300.0:
            net.run(until=net.sim.now + 1.0)
            if node.alive and initial_size is None:
                initial_size = len(node.peer_list)
            if full_at is None and node.alive and len(node.peer_list) == len(
                net.live_nodes()
            ):
                full_at = net.sim.now
                break
        out.append(
            (
                int(extra),
                (done.get("t", float("nan")) - t0),
                (full_at - t0) if full_at is not None else float("inf"),
                initial_size if initial_size is not None else 0,
            )
        )
    return out


def ablate_bandwidth_digitization(
    shifts: List[float],
    base: Optional[ScalableParams] = None,
) -> List[Tuple[float, float]]:
    """(weight shift, fraction at level 0) — robustness of figure 5's
    majority-at-level-0 claim to our digitization of Saroiu et al.'s
    bandwidth CDF.

    ``shift`` moves probability mass between the broadband middle and the
    fast tail: +0.1 moves 10 points from the 1-3 Mbps cable class to the
    3-10 Mbps class (a faster population), -0.1 the reverse.  The claim
    should survive ±0.1 — i.e. the reproduction does not hinge on the
    exact digitized weights.

    The default base uses ``lifetime_rate = 0.1`` at 8k nodes so the
    level-0 affordability cutoff (~2 Mbps) lands *inside* the shifted
    bandwidth classes at CI scale; with full lifetimes at small N the
    cutoff sits below 1 Mbps and every shift would be a no-op (at the
    paper's 100k the cutoff is naturally in range).
    """
    from repro.workloads.bandwidth_dist import (
        GNUTELLA_CATEGORIES,
        BandwidthCategory,
        GnutellaBandwidthDistribution,
    )

    base = base or ScalableParams(
        n_target=8_000, duration_s=500.0, warmup_s=150.0, lifetime_rate=0.1
    )
    out = []
    for shift in shifts:
        cats = []
        for c in GNUTELLA_CATEGORIES:
            weight = c.weight
            if c.name == "cable":
                weight -= shift
            elif c.name == "fast-cable-t1":
                weight += shift
            cats.append(BandwidthCategory(c.name, max(weight, 0.0), c.low_bps, c.high_bps))
        dist = GnutellaBandwidthDistribution(cats)
        result = ScalableSim(base, bandwidth_dist=dist).run()
        out.append((float(shift), result.fraction_at_level(0)))
    return out


def ablate_lifetime_shape(
    base: Optional[ScalableParams] = None,
) -> List[Tuple[str, float, int]]:
    """(distribution, mean error rate, populated levels) at a fixed mean
    lifetime — the §2 cost model depends on the *mean* only, so the level
    structure should be shape-invariant while the error rate moves only
    mildly (residual-lifetime effects)."""
    from repro.workloads.lifetime import (
        COMMON_MEAN_LIFETIME_S,
        ExponentialLifetime,
        GnutellaLifetimeDistribution,
        WeibullLifetime,
    )

    base = base or ScalableParams(n_target=10_000, duration_s=500.0, warmup_s=150.0)
    dists = [
        ("lognormal (paper)", GnutellaLifetimeDistribution()),
        ("exponential", ExponentialLifetime(mean=COMMON_MEAN_LIFETIME_S)),
        ("weibull k=0.6", WeibullLifetime(mean=COMMON_MEAN_LIFETIME_S, shape=0.6)),
    ]
    out = []
    for name, dist in dists:
        result = ScalableSim(base, lifetime_dist=dist).run()
        out.append((name, result.mean_error_rate, result.n_levels()))
    return out


def ablate_threshold_floor(
    floors_bps: List[float],
    base: Optional[ScalableParams] = None,
) -> List[Tuple[float, int]]:
    """(threshold floor, deepest populated level) — halving the 500 bps
    floor pushes the weakest nodes roughly one level deeper."""
    base = base or ScalableParams(n_target=10_000, duration_s=600.0, warmup_s=200.0)
    out = []
    for floor in floors_bps:
        params = replace(base, threshold_floor_bps=float(floor))
        result = ScalableSim(params).run()
        deepest = max((r.level for r in result.rows if r.population > 0), default=0)
        out.append((float(floor), deepest))
    return out
