"""Closed-form predictions for the §5 figures.

The level distribution is fully determined by three inputs — the
bandwidth-threshold distribution, the system event rate, and the message
size — because each node's level is the §2 stationary point
``l = max(0, ceil(log2(R·i / W)))``.  These functions compute the figures
analytically, giving:

* an independent check of the simulation engines (tests pin them to each
  other);
* instant paper-scale predictions (the 100,000-node figure 5 in
  microseconds);
* a design tool: plug in *your* deployment's bandwidth mix and churn and
  read off the expected level structure and costs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.workloads.bandwidth_dist import (
    GnutellaBandwidthDistribution,
    threshold_from_bandwidth,
)
from repro.workloads.lifetime import COMMON_MEAN_LIFETIME_S


def system_event_rate(
    n_nodes: float,
    mean_lifetime_s: float = COMMON_MEAN_LIFETIME_S,
    changes_per_lifetime: float = 2.0,
) -> float:
    """Stationary state-change rate: ``N * m / L`` events per second.

    ``m = 2`` counts joins and leaves (the churn the engines measure);
    the paper's §2 estimate uses ``m = 3`` (one extra change per
    lifetime).
    """
    if n_nodes < 0 or mean_lifetime_s <= 0 or changes_per_lifetime <= 0:
        raise ValueError("invalid rate parameters")
    return n_nodes * changes_per_lifetime / mean_lifetime_s


def predict_level_distribution(
    n_nodes: int,
    mean_lifetime_s: float = COMMON_MEAN_LIFETIME_S,
    event_bits: float = 1000.0,
    changes_per_lifetime: float = 2.0,
    bandwidth_dist: Optional[GnutellaBandwidthDistribution] = None,
    threshold_fraction: float = 0.01,
    threshold_floor_bps: float = 500.0,
    max_level: int = 24,
    samples: int = 200_000,
    seed: int = 0,
) -> Dict[int, float]:
    """Predicted fraction of nodes per level (figure 5/9/11 rows).

    Monte-Carlo over the threshold distribution (the distribution has no
    closed-form inverse through the 1 %/floor transform, so we sample;
    200k samples give ±0.2 % fractions).
    """
    dist = bandwidth_dist or GnutellaBandwidthDistribution()
    rng = np.random.default_rng(seed)
    bws = np.asarray(dist.sample(rng, samples))
    thresholds = threshold_from_bandwidth(bws, threshold_fraction, threshold_floor_bps)
    rate = system_event_rate(n_nodes, mean_lifetime_s, changes_per_lifetime)
    cost0 = rate * event_bits
    levels = np.ceil(np.log2(np.maximum(cost0 / thresholds, 1.0)))
    levels = np.clip(levels, 0, max_level).astype(int)
    counts = np.bincount(levels, minlength=max_level + 1)
    return {
        int(l): float(c) / samples for l, c in enumerate(counts) if c > 0
    }


def predict_n_levels(
    n_nodes: int,
    mean_lifetime_s: float = COMMON_MEAN_LIFETIME_S,
    event_bits: float = 1000.0,
    changes_per_lifetime: float = 2.0,
    threshold_floor_bps: float = 500.0,
    max_level: int = 24,
) -> int:
    """Number of populated levels: the deepest level is set by the
    threshold floor (the weakest possible node)."""
    rate = system_event_rate(n_nodes, mean_lifetime_s, changes_per_lifetime)
    cost0 = rate * event_bits
    if cost0 <= threshold_floor_bps:
        return 1
    deepest = math.ceil(math.log2(cost0 / threshold_floor_bps))
    return min(deepest, max_level) + 1


def predict_error_rate(
    n_nodes: int,
    mean_lifetime_s: float = COMMON_MEAN_LIFETIME_S,
    probe_interval_s: float = 30.0,
    probe_timeout_s: float = 5.0,
    processing_delay_s: float = 1.0,
    mean_link_latency_s: float = 0.5,
) -> float:
    """Predicted mean peer-list error rate (figure 7/10/12 values).

    Per §5.3, ``error ≈ propagation_delay / lifetime``, with one leave and
    one join charged per session:

    * leave staleness = detection (interval/2 + timeout) + report leg +
      mean tree depth × per-hop cost;
    * join absence = report leg + depth × per-hop cost;
    * mean binomial-tree depth ≈ log2(audience)/2 ≈ log2(N)/2.
    """
    if n_nodes < 2:
        return 0.0
    depth = math.log2(n_nodes) / 2.0
    hop = processing_delay_s + mean_link_latency_s
    report = processing_delay_s + mean_link_latency_s
    leave_delay = probe_interval_s / 2.0 + probe_timeout_s + report + depth * hop
    join_delay = report + depth * hop
    return (leave_delay + join_delay) / mean_lifetime_s


def predict_input_bps(
    n_nodes: int,
    level: int,
    mean_lifetime_s: float = COMMON_MEAN_LIFETIME_S,
    event_bits: float = 1000.0,
    changes_per_lifetime: float = 2.0,
) -> float:
    """Predicted event-input bandwidth of a level-``l`` node (figure 8):
    the share of the system event stream landing in its prefix."""
    rate = system_event_rate(n_nodes, mean_lifetime_s, changes_per_lifetime)
    return rate * event_bits / (2.0**level)


def predict_bps_per_1000_pointers(
    mean_lifetime_s: float = COMMON_MEAN_LIFETIME_S,
    event_bits: float = 1000.0,
    changes_per_lifetime: float = 2.0,
) -> float:
    """Figure 8's headline constant: maintenance input per 1000 pointers
    is scale- and level-free: ``1000 * m * i / L``."""
    return 1000.0 * changes_per_lifetime * event_bits / mean_lifetime_s


def predict_figure9(
    scales: List[int], **kwargs
) -> List[Tuple[int, Dict[int, float]]]:
    """Level distributions across a scale sweep."""
    return [(n, predict_level_distribution(n, **kwargs)) for n in scales]


def predict_figure11(
    rates: List[float], n_nodes: int = 100_000, **kwargs
) -> List[Tuple[float, Dict[int, float]]]:
    """Level distributions across a Lifetime_Rate sweep."""
    out = []
    for r in rates:
        out.append(
            (
                r,
                predict_level_distribution(
                    n_nodes, mean_lifetime_s=COMMON_MEAN_LIFETIME_S * r, **kwargs
                ),
            )
        )
    return out
