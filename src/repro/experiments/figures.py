"""Per-figure reproduction entry points (§5, figures 5-12).

Each ``figN()`` returns the rows the corresponding paper figure plots.
Figures 5-8 come from one *common PeerWindow* run (shared and cached);
figures 9/10 sweep the system scale; figures 11/12 sweep ``Lifetime_Rate``.

The benches in ``benchmarks/`` call these and print the tables; the
integration tests assert the paper's qualitative claims on the returned
rows (who wins, how trends move).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.scalable import ScalableParams, ScalableResult, ScalableSim
from repro.experiments.scenario import common_params, lifetime_rates, scale_sweep
from repro.workloads.lifetime import GnutellaLifetimeDistribution

# One common-run cache per parameter set, so bench_fig05..08 share a run.
_run_cache: Dict[ScalableParams, ScalableResult] = {}


def run_scenario(params: ScalableParams) -> ScalableResult:
    """Run (or reuse) the scenario with the given parameters."""
    result = _run_cache.get(params)
    if result is None:
        sim = ScalableSim(
            params,
            lifetime_dist=GnutellaLifetimeDistribution(lifetime_rate=params.lifetime_rate),
        )
        result = sim.run()
        _run_cache[params] = result
    return result


def clear_cache() -> None:
    _run_cache.clear()


# ---------------------------------------------------------------------------
# Figures 5-8: the common PeerWindow
# ---------------------------------------------------------------------------


def fig5_node_distribution(params: Optional[ScalableParams] = None) -> List[Tuple[int, int, float]]:
    """Figure 5: (level, population, fraction) rows.

    Paper: *"more than half of the nodes running at level 0"*.
    """
    res = run_scenario(params or common_params())
    return [(r.level, r.population, r.fraction) for r in res.rows if r.population > 0]


def fig6_peer_list_sizes(
    params: Optional[ScalableParams] = None,
) -> List[Tuple[int, float, float, float]]:
    """Figure 6: (level, mean, min, max) peer-list sizes.

    Paper: sizes halve per level (``N / 2^l``) and max ≈ min within a level.
    """
    res = run_scenario(params or common_params())
    return [
        (r.level, r.mean_list_size, r.min_list_size, r.max_list_size)
        for r in res.rows
        if r.population > 0
    ]


def fig7_error_rates(params: Optional[ScalableParams] = None) -> List[Tuple[int, float]]:
    """Figure 7: (level, peer-list error rate).

    Paper: all levels below 0.5%; stronger levels slightly lower.
    """
    res = run_scenario(params or common_params())
    return [(r.level, r.error_rate) for r in res.rows if r.population > 0]


def fig8_bandwidth(params: Optional[ScalableParams] = None) -> List[Tuple[int, float, float]]:
    """Figure 8: (level, input bps, output bps) for peer-list maintenance.

    Paper: input ∝ list size (~500 bps per 1000 pointers); output is
    concentrated at levels 0-1.
    """
    res = run_scenario(params or common_params())
    return [(r.level, r.in_bps, r.out_bps) for r in res.rows if r.population > 0]


# ---------------------------------------------------------------------------
# Figures 9-10: scalability (§5.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    x: float
    level_fractions: Tuple[Tuple[int, float], ...]
    mean_error_rate: float
    n_levels: int


def _sweep_point(params: ScalableParams, x: float) -> SweepPoint:
    res = run_scenario(params)
    fractions = tuple(
        (r.level, r.fraction) for r in res.rows if r.population > 0
    )
    return SweepPoint(
        x=x,
        level_fractions=fractions,
        mean_error_rate=res.mean_error_rate,
        n_levels=res.n_levels(),
    )


def fig9_scalability_levels(
    scales: Optional[Sequence[int]] = None,
    base: Optional[ScalableParams] = None,
) -> List[SweepPoint]:
    """Figure 9: level distribution vs system scale.

    Paper: at 5,000 nodes (almost) everyone runs at level 0; more levels
    appear and populate as N grows.
    """
    base = base or common_params()
    out = []
    for n in scales if scales is not None else scale_sweep():
        params = replace(base, n_target=int(n))
        out.append(_sweep_point(params, float(n)))
    return out


def fig10_scalability_error(
    scales: Optional[Sequence[int]] = None,
    base: Optional[ScalableParams] = None,
) -> List[Tuple[float, float]]:
    """Figure 10: mean peer-list error rate vs system scale.

    Paper: the error rate rises with scale, *"but the change is very
    slight"* (multicast depth grows only logarithmically).
    """
    return [
        (p.x, p.mean_error_rate)
        for p in fig9_scalability_levels(scales, base)
    ]


# ---------------------------------------------------------------------------
# Figures 11-12: adaptivity (§5.3)
# ---------------------------------------------------------------------------


def fig11_adaptivity_levels(
    rates: Optional[Sequence[float]] = None,
    base: Optional[ScalableParams] = None,
) -> List[SweepPoint]:
    """Figure 11: level distribution vs ``Lifetime_Rate``.

    Paper: at rate 0.1 (13.5-minute lifetimes) ~10 levels appear and only
    ~15% of nodes can hold level 0; longer lifetimes collapse everyone
    toward level 0.
    """
    base = base or common_params()
    out = []
    for rate in rates if rates is not None else lifetime_rates():
        params = replace(base, lifetime_rate=float(rate))
        out.append(_sweep_point(params, float(rate)))
    return out


def fig12_adaptivity_error(
    rates: Optional[Sequence[float]] = None,
    base: Optional[ScalableParams] = None,
) -> List[Tuple[float, float]]:
    """Figure 12: mean error rate vs ``Lifetime_Rate`` (log-scale y).

    Paper: ``error_rate ≈ multicast_delay / lifetime``, so the error is
    roughly inversely proportional to the lifetime rate (~10x at rate 0.1).
    """
    return [
        (p.x, p.mean_error_rate)
        for p in fig11_adaptivity_levels(rates, base)
    ]
