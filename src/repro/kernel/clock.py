"""The kernel clock: time and timers, independent of the execution engine.

Every timer the protocol arms goes through this interface, which pins
down the semantics all backends must share (they are the semantics of
:class:`repro.sim.engine.Simulator`, the original implementation):

* :meth:`Clock.schedule` returns a handle with ``cancel()`` and
  ``active``; cancel is idempotent and cancelling a fired handle is a
  no-op.
* :meth:`Clock.every` fires first after ``start_delay`` (default: one
  interval) and then repeatedly; with ``jitter > 0`` each gap is drawn
  uniformly from ``interval * [1 - jitter, 1 + jitter]`` using a
  **seeded** generator, so even the jitter is reproducible.  ``jitter``
  requires ``rng``; ``interval`` must be positive; ``jitter`` lies in
  ``[0, 1)``.
* ``now`` is seconds on the backend's time base: simulated seconds for
  the DES backends, seconds since a configured epoch for the realtime
  backend (:class:`repro.live.clock.RealtimeClock`) — in both cases runs
  start near ``t = 0`` so exported span timestamps are comparable.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.sim.engine import Simulator


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable reference to a scheduled one-shot callback."""

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        ...

    @property
    def active(self) -> bool:
        """True until the callback has run or the handle was cancelled."""
        ...


@runtime_checkable
class PeriodicTimer(Protocol):
    """A repeating timer created by :meth:`Clock.every`."""

    def cancel(self) -> None:
        ...

    @property
    def active(self) -> bool:
        ...


class Clock(abc.ABC):
    """Time and timers — the part of a runtime that is pure scheduling."""

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds on this backend's time base."""

    @abc.abstractmethod
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` seconds."""

    @abc.abstractmethod
    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Any = None,
    ) -> PeriodicTimer:
        """Run ``callback(*args)`` every ``interval`` seconds (jittered
        when ``jitter > 0``) until the returned timer is cancelled."""


class SimClock(Clock):
    """A :class:`~repro.sim.engine.Simulator` seen through the kernel
    clock interface.  Pure delegation — the simulator's handles already
    satisfy the kernel protocols."""

    __slots__ = ("sim",)

    def __init__(self, sim: Simulator):
        self.sim = sim

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        return self.sim.schedule(delay, callback, *args)

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Any = None,
    ) -> PeriodicTimer:
        return self.sim.every(
            interval, callback, *args, start_delay=start_delay, jitter=jitter, rng=rng
        )
