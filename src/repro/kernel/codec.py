"""Versioned, schema-checked JSON wire format for protocol messages.

The DES backends pass :class:`~repro.net.message.Message` objects by
reference (sizes are explicit ``size_bits``, so nothing needs to be
serialized).  The realtime backend puts them on UDP sockets, which makes
the payload structure part of the protocol for the first time.  This
module pins it down:

* one envelope: ``{"v", "kind", "src", "dst", "id", "re", "bits",
  "trace", "body"}`` — compact separators, sorted keys, UTF-8;
* ``v`` is :data:`WIRE_SCHEMA_VERSION`; a decoder refuses versions it
  does not know;
* every message kind has a registered body schema (the §4 handshakes
  fix these shapes — see PROTOCOL.md "Wire format"); encoding a payload
  that does not match, or decoding a body that does not match, raises
  :class:`CodecError`;
* round-trip guarantee: ``decode_message(encode_message(m)) == m`` for
  every well-formed message of every kind (property-tested in
  ``tests/kernel/test_codec.py``).  ``msg_id`` rides the wire, so reply
  correlation (``reply_to`` → ``msg_id``) survives serialization.

Values: addresses are ints (sim keys) or strings (``"host:port"``);
``attached_info`` must be a JSON tree (None/bool/int/float/str, lists,
string-keyed dicts) — anything else is a :class:`CodecError` at encode
time, *not* a silent ``repr``.  NodeIds serialize as ``(value, bits)``
(arbitrary-precision ints are native JSON here).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.events import EventKind, EventRecord
from repro.core.nodeid import NodeId
from repro.core.pointer import Pointer
from repro.kernel import schema as wire_schema
from repro.net.message import Message
from repro.obs.trace import SpanRef

#: Bump when the envelope or any body schema changes shape.
WIRE_SCHEMA_VERSION: int = 1


class CodecError(ValueError):
    """A message (or datagram) that violates the wire schema."""


def _fail(msg: str) -> None:
    raise CodecError(msg)


# -- value codecs -----------------------------------------------------------


def _enc_addr(addr: Any, what: str) -> Any:
    if isinstance(addr, bool) or not isinstance(addr, (int, str)):
        _fail(f"{what} must be an int or str address, got {type(addr).__name__}")
    return addr


def _dec_addr(obj: Any, what: str) -> Any:
    if isinstance(obj, bool) or not isinstance(obj, (int, str)):
        _fail(f"{what} must be an int or str address, got {type(obj).__name__}")
    return obj


def _check_info(value: Any, what: str) -> Any:
    """Validate ``attached_info`` is a JSON tree that round-trips
    identically (tuples/sets/bytes would come back changed)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            _fail(f"{what} must be finite, got {value!r}")
        return value
    if isinstance(value, list):
        for item in value:
            _check_info(item, what)
        return value
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                _fail(f"{what} dict keys must be str, got {type(key).__name__}")
            _check_info(item, what)
        return value
    _fail(f"{what} must be a JSON tree, got {type(value).__name__}")


def _dec_number(obj: Any, what: str) -> float:
    if isinstance(obj, bool) or not isinstance(obj, (int, float)):
        _fail(f"{what} must be a number, got {type(obj).__name__}")
    return obj


def _dec_int(obj: Any, what: str) -> int:
    if isinstance(obj, bool) or not isinstance(obj, int):
        _fail(f"{what} must be an int, got {type(obj).__name__}")
    return obj


def _enc_node_id(nid: Any) -> Dict[str, int]:
    if not isinstance(nid, NodeId):
        _fail(f"expected NodeId, got {type(nid).__name__}")
    return {"v": nid.value, "b": nid.bits}


def _dec_node_id(obj: Any) -> NodeId:
    if not isinstance(obj, dict) or set(obj) != {"v", "b"}:
        _fail(f"node id must be {{v, b}}, got {obj!r}")
    return NodeId(_dec_int(obj["v"], "node id value"), _dec_int(obj["b"], "node id bits"))


def _enc_pointer(ptr: Any) -> Dict[str, Any]:
    if not isinstance(ptr, Pointer):
        _fail(f"expected Pointer, got {type(ptr).__name__}")
    return {
        "id": _enc_node_id(ptr.node_id),
        "addr": _enc_addr(ptr.address, "pointer address"),
        "level": ptr.level,
        "info": _check_info(ptr.attached_info, "pointer attached_info"),
        "sjt": ptr.seen_join_time,
        "refresh": ptr.last_refresh,
        "seq": ptr.last_event_seq,
    }


_POINTER_FIELDS = {"id", "addr", "level", "info", "sjt", "refresh", "seq"}


def _dec_pointer(obj: Any) -> Pointer:
    if not isinstance(obj, dict) or set(obj) != _POINTER_FIELDS:
        _fail(f"pointer must have fields {sorted(_POINTER_FIELDS)}, got {obj!r}")
    sjt = obj["sjt"]
    if sjt is not None:
        sjt = _dec_number(sjt, "pointer seen_join_time")
    return Pointer(
        node_id=_dec_node_id(obj["id"]),
        address=_dec_addr(obj["addr"], "pointer address"),
        level=_dec_int(obj["level"], "pointer level"),
        attached_info=_check_info(obj["info"], "pointer attached_info"),
        seen_join_time=sjt,
        last_refresh=_dec_number(obj["refresh"], "pointer last_refresh"),
        last_event_seq=_dec_int(obj["seq"], "pointer last_event_seq"),
    )


def _enc_pointers(ptrs: Any, what: str) -> List[Dict[str, Any]]:
    if not isinstance(ptrs, list):
        _fail(f"{what} must be a list of pointers, got {type(ptrs).__name__}")
    return [_enc_pointer(p) for p in ptrs]


def _dec_pointers(obj: Any, what: str) -> List[Pointer]:
    if not isinstance(obj, list):
        _fail(f"{what} must be a list of pointers, got {type(obj).__name__}")
    return [_dec_pointer(p) for p in obj]


def _enc_event(ev: Any) -> Dict[str, Any]:
    if not isinstance(ev, EventRecord):
        _fail(f"expected EventRecord, got {type(ev).__name__}")
    return {
        "kind": ev.kind.value,
        "id": _enc_node_id(ev.subject_id),
        "level": ev.subject_level,
        "addr": _enc_addr(ev.subject_address, "event subject_address"),
        "seq": ev.seq,
        "t": ev.origin_time,
        "info": _check_info(ev.attached_info, "event attached_info"),
    }


_EVENT_FIELDS = {"kind", "id", "level", "addr", "seq", "t", "info"}


def _dec_event(obj: Any) -> EventRecord:
    if not isinstance(obj, dict) or set(obj) != _EVENT_FIELDS:
        _fail(f"event must have fields {sorted(_EVENT_FIELDS)}, got {obj!r}")
    try:
        kind = EventKind(obj["kind"])
    except ValueError:
        _fail(f"unknown event kind {obj['kind']!r}")
    return EventRecord(
        kind=kind,
        subject_id=_dec_node_id(obj["id"]),
        subject_level=_dec_int(obj["level"], "event subject_level"),
        subject_address=_dec_addr(obj["addr"], "event subject_address"),
        seq=_dec_int(obj["seq"], "event seq"),
        origin_time=_dec_number(obj["t"], "event origin_time"),
        attached_info=_check_info(obj["info"], "event attached_info"),
    )


# -- body schemas, one per message kind -------------------------------------


def _enc_none(payload: Any) -> Any:
    if payload is not None:
        _fail(f"payload must be None, got {type(payload).__name__}")
    return None


def _dec_none(obj: Any) -> Any:
    if obj is not None:
        _fail(f"body must be null, got {obj!r}")
    return None


def _enc_opt_pointer(payload: Any) -> Any:
    return None if payload is None else _enc_pointer(payload)


def _dec_opt_pointer(obj: Any) -> Optional[Pointer]:
    return None if obj is None else _dec_pointer(obj)


def _body_pair(obj: Any, kind: str, n: int = 2) -> List[Any]:
    if not isinstance(obj, list) or len(obj) != n:
        _fail(f"{kind} body must be a {n}-element list, got {obj!r}")
    return obj


def _enc_level_info(payload: Any) -> Any:
    if not isinstance(payload, tuple) or len(payload) != 3:
        _fail("level-info payload must be (level, ewma_rate, piggyback)")
    level, rate, piggyback = payload
    if isinstance(level, bool) or not isinstance(level, int):
        _fail("level-info level must be an int")
    if isinstance(rate, bool) or not isinstance(rate, (int, float)):
        _fail("level-info ewma_rate must be a number")
    return [level, rate, _enc_pointers(piggyback, "level-info piggyback")]


def _dec_level_info(obj: Any) -> Tuple[int, float, List[Pointer]]:
    body = _body_pair(obj, "level-info", 3)
    return (
        _dec_int(body[0], "level-info level"),
        _dec_number(body[1], "level-info ewma_rate"),
        _dec_pointers(body[2], "level-info piggyback"),
    )


def _enc_get_top(payload: Any) -> Any:
    # Two accepted shapes (additive, DESIGN §16): the bare joiner id, or
    # ``(joiner_id, nonce)`` carrying the admission proof-of-work token.
    if isinstance(payload, tuple):
        if len(payload) != 2:
            _fail("get-top payload must be node_id or (node_id, nonce)")
        joiner, nonce = payload
        if isinstance(nonce, bool) or not isinstance(nonce, int) or nonce < 0:
            _fail("get-top nonce must be a non-negative int")
        return {"id": _enc_node_id(joiner), "nonce": nonce}
    return _enc_node_id(payload)


def _dec_get_top(obj: Any) -> Any:
    if isinstance(obj, dict) and set(obj) == {"id", "nonce"}:
        nonce = _dec_int(obj["nonce"], "get-top nonce")
        if nonce < 0:
            _fail("get-top nonce must be a non-negative int")
        return (_dec_node_id(obj["id"]), nonce)
    return _dec_node_id(obj)


def _enc_download(payload: Any) -> Any:
    if not isinstance(payload, tuple) or len(payload) != 2:
        _fail("download payload must be (requester_id, prefix_len)")
    requester, prefix_len = payload
    if isinstance(prefix_len, bool) or not isinstance(prefix_len, int):
        _fail("download prefix_len must be an int")
    return [_enc_node_id(requester), prefix_len]


def _dec_download(obj: Any) -> Tuple[NodeId, int]:
    body = _body_pair(obj, "download")
    return (_dec_node_id(body[0]), _dec_int(body[1], "download prefix_len"))


def _enc_download_data(payload: Any) -> Any:
    if not isinstance(payload, tuple) or len(payload) != 2:
        _fail("download-data payload must be (matching, tops)")
    matching, tops = payload
    return [
        _enc_pointers(matching, "download-data matching"),
        _enc_pointers(tops, "download-data tops"),
    ]


def _dec_download_data(obj: Any) -> Tuple[List[Pointer], List[Pointer]]:
    body = _body_pair(obj, "download-data")
    return (
        _dec_pointers(body[0], "download-data matching"),
        _dec_pointers(body[1], "download-data tops"),
    )


def _enc_mcast(payload: Any) -> Any:
    if not isinstance(payload, tuple) or len(payload) != 2:
        _fail("mcast payload must be (event, next_bit)")
    event, next_bit = payload
    if isinstance(next_bit, bool) or not isinstance(next_bit, int):
        _fail("mcast next_bit must be an int")
    return [_enc_event(event), next_bit]


def _dec_mcast(obj: Any) -> Tuple[EventRecord, int]:
    body = _body_pair(obj, "mcast")
    return (_dec_event(body[0]), _dec_int(body[1], "mcast next_bit"))


def _enc_bridge_subscribe(payload: Any) -> Any:
    if not isinstance(payload, tuple) or len(payload) != 2:
        _fail("bridge-subscribe payload must be (pointer, is_top)")
    pointer, is_top = payload
    if not isinstance(is_top, bool):
        _fail("bridge-subscribe is_top must be a bool")
    return [_enc_pointer(pointer), is_top]


def _dec_bridge_subscribe(obj: Any) -> Tuple[Pointer, bool]:
    body = _body_pair(obj, "bridge-subscribe")
    if not isinstance(body[1], bool):
        _fail("bridge-subscribe is_top must be a bool")
    return (_dec_pointer(body[0]), body[1])


#: kind -> (encode_body, decode_body); the schema registry.  These are
#: the exact shapes the §4 services put in ``Message.payload``.
_BODY_CODECS: Dict[str, Tuple[Callable[[Any], Any], Callable[[Any], Any]]] = {
    # failure detection (§4.1) and tree acks (§4.2)
    "probe": (_enc_none, _dec_none),
    "probe-ack": (_enc_none, _dec_none),
    "mcast-ack": (_enc_none, _dec_none),
    "bridge-ack": (_enc_none, _dec_none),
    # join handshake (§4.3)
    "get-top": (_enc_get_top, _dec_get_top),
    "top-ptr": (_enc_opt_pointer, _dec_opt_pointer),
    "level-query": (_enc_node_id, _dec_node_id),
    "level-info": (_enc_level_info, _dec_level_info),
    "download": (_enc_download, _dec_download),
    "download-data": (_enc_download_data, _dec_download_data),
    # dissemination (§4.2) and reporting
    "mcast": (_enc_mcast, _dec_mcast),
    "event-copy": (_enc_event, _dec_event),
    "report": (_enc_event, _dec_event),
    "report-ack": (
        lambda p: _enc_pointers(p, "report-ack tops"),
        lambda o: _dec_pointers(o, "report-ack tops"),
    ),
    # maintenance (§4.4/§4.5 top-node exchange and part bridging)
    "get-topnodes": (_enc_none, _dec_none),
    "topnodes": (
        lambda p: _enc_pointers(p, "topnodes"),
        lambda o: _dec_pointers(o, "topnodes"),
    ),
    "bridge-subscribe": (_enc_bridge_subscribe, _dec_bridge_subscribe),
}

#: Every kind the codec (and therefore the wire) knows, in sorted order.
MESSAGE_KINDS: Tuple[str, ...] = tuple(sorted(_BODY_CODECS))

# The implementation (this registry) and the description
# (repro.kernel.schema, which the static analyzer checks construction
# sites against) must never drift: fail loudly at import time, not at
# the first mismatched message.
if set(_BODY_CODECS) != set(wire_schema.BODY_SCHEMAS):  # pragma: no cover
    _only_codec = sorted(set(_BODY_CODECS) - set(wire_schema.BODY_SCHEMAS))
    _only_schema = sorted(set(wire_schema.BODY_SCHEMAS) - set(_BODY_CODECS))
    raise RuntimeError(
        "wire codec and repro.kernel.schema disagree on message kinds: "
        f"codec-only={_only_codec} schema-only={_only_schema}"
    )


# -- envelope ---------------------------------------------------------------


def encode_message(msg: Message) -> bytes:
    """Serialize ``msg`` to one UTF-8 JSON datagram.

    Raises :class:`CodecError` for unknown kinds or payloads that do not
    match the kind's schema.
    """
    codec = _BODY_CODECS.get(msg.kind)
    if codec is None:
        _fail(f"unknown message kind {msg.kind!r}")
    if msg.trace is not None:
        trace: Optional[List[Any]] = [msg.trace[0], msg.trace[1], msg.trace[2]]
    else:
        trace = None
    envelope = {
        "v": WIRE_SCHEMA_VERSION,
        "kind": msg.kind,
        "src": _enc_addr(msg.src, "src"),
        "dst": _enc_addr(msg.dst, "dst"),
        "id": msg.msg_id,
        "re": msg.reply_to,
        "bits": msg.size_bits,
        "trace": trace,
        "body": codec[0](msg.payload),
    }
    try:
        text = json.dumps(
            envelope, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as exc:
        raise CodecError(f"unserializable message: {exc}") from exc
    return text.encode("utf-8")


_ENVELOPE_FIELDS = {"v", "kind", "src", "dst", "id", "re", "bits", "trace", "body"}


def decode_message(data: bytes) -> Message:
    """Parse one datagram back into a :class:`Message`.

    Raises :class:`CodecError` for malformed JSON, unknown versions or
    kinds, a missing/extra envelope field, or a body that violates the
    kind's schema.
    """
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed datagram: {exc}") from exc
    if not isinstance(obj, dict) or set(obj) != _ENVELOPE_FIELDS:
        _fail(f"envelope must have fields {sorted(_ENVELOPE_FIELDS)}")
    version = obj["v"]
    if version != WIRE_SCHEMA_VERSION:
        _fail(f"unsupported wire schema version {version!r}")
    kind = obj["kind"]
    codec = _BODY_CODECS.get(kind) if isinstance(kind, str) else None
    if codec is None:
        _fail(f"unknown message kind {kind!r}")
    reply_to = obj["re"]
    if reply_to is not None:
        reply_to = _dec_int(reply_to, "reply_to")
    size_bits = _dec_int(obj["bits"], "size_bits")
    if size_bits < 0:
        _fail("size_bits must be non-negative")
    raw_trace = obj["trace"]
    if raw_trace is None:
        trace: Optional[SpanRef] = None
    else:
        if (
            not isinstance(raw_trace, list)
            or len(raw_trace) != 3
            or not isinstance(raw_trace[0], str)
            or not isinstance(raw_trace[1], str)
        ):
            _fail(f"trace must be [trace_id, span_id, depth], got {raw_trace!r}")
        trace = SpanRef(raw_trace[0], raw_trace[1], _dec_int(raw_trace[2], "trace depth"))
    return Message(
        src=_dec_addr(obj["src"], "src"),
        dst=_dec_addr(obj["dst"], "dst"),
        kind=kind,
        payload=codec[1](obj["body"]),
        size_bits=size_bits,
        msg_id=_dec_int(obj["id"], "msg_id"),
        reply_to=reply_to,
        trace=trace,
    )
