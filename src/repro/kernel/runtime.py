"""The kernel runtime interface: what a protocol participant runs on.

:class:`NodeRuntime` is a :class:`~repro.kernel.clock.Clock` plus a
message fabric.  The five PeerWindow services (join, level shift,
failure detection, dissemination, maintenance) are written against this
surface only; backends differ in *how* they implement it, never in what
the services see:

* :class:`~repro.core.runtime.SimRuntime` — one sequential
  :class:`~repro.sim.engine.Simulator` + :class:`~repro.net.transport.Transport`;
* :class:`~repro.core.runtime.PartitionedRuntime` — conservative
  parallel DES, one runtime view per logical process;
* :class:`~repro.live.runtime.RealtimeRuntime` — asyncio/UDP with
  wall-clock timers, messages serialized by :mod:`repro.kernel.codec`.

Request/response semantics (shared by all backends, verified by
``tests/live/test_request_semantics.py``):

* exactly one of ``on_reply`` / ``on_timeout`` fires, ``on_reply`` at
  most once even if the responder replies twice;
* a duplicate or late reply (after the timeout fired) is *not* dropped —
  it falls through to the requester's registered endpoint handler, which
  is how the protocol's stale-ack paths observe it;
* ``unregister`` cancels the pending requests the departed endpoint
  originated (their callbacks never fire), and only those.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Hashable, Optional, Protocol, runtime_checkable

from repro.kernel.clock import Clock, PeriodicTimer, TimerHandle
from repro.net.message import Message


@runtime_checkable
class EndpointLike(Protocol):
    """What :meth:`NodeRuntime.register` returns: the per-node mailbox
    with the §2 bandwidth meters the level-shift service reads."""

    key: Hashable
    handler: Callable[[Message], None]
    bw_in: Any
    bw_out: Any
    ewma_in: Any
    ewma_out: Any


class NodeRuntime(Clock):
    """The execution surface one protocol participant runs on."""

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time for this node, in seconds (see :class:`Clock`)."""

    @abc.abstractmethod
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` seconds."""

    @abc.abstractmethod
    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Any = None,
    ) -> PeriodicTimer:
        """Repeating timer (see :meth:`repro.kernel.clock.Clock.every`)."""

    @abc.abstractmethod
    def send(self, msg: Message) -> None:
        """Fire-and-forget message send."""

    @abc.abstractmethod
    def request(
        self,
        msg: Message,
        timeout: float,
        on_reply: Callable[[Message], None],
        on_timeout: Callable[[], None],
    ) -> None:
        """Correlated request/response with a timeout (semantics above)."""

    @abc.abstractmethod
    def is_alive(self, key: Hashable) -> bool:
        """Whether ``key`` is a currently-registered endpoint.

        Backends without a global membership view (the realtime backend)
        answer for *locally hosted* keys only; the protocol only ever
        asks about a node's own address, so that is sufficient.
        """

    @abc.abstractmethod
    def register(self, key: Hashable, handler: Callable[[Message], None]) -> EndpointLike:
        """Attach a message handler for ``key``; returns its endpoint."""

    @abc.abstractmethod
    def unregister(self, key: Hashable) -> None:
        """Detach ``key`` (a departed node)."""
