"""Backend-neutral execution kernel.

The PeerWindow services are written against three small surfaces, all of
which live here and none of which mention a simulator or a socket:

* :class:`~repro.kernel.clock.Clock` — time, one-shot timers, periodic
  timers (with reproducible jitter);
* :class:`~repro.kernel.runtime.NodeRuntime` — the clock plus a message
  fabric (send / correlated request / endpoint registry);
* :mod:`~repro.kernel.codec` — a versioned, schema-checked JSON wire
  format for :class:`~repro.net.message.Message` and every payload the
  protocol puts on the wire.

Three runtimes instantiate the kernel: :class:`~repro.core.runtime.SimRuntime`
(sequential DES), :class:`~repro.core.runtime.PartitionedRuntime`
(conservative parallel DES), and :class:`~repro.live.runtime.RealtimeRuntime`
(asyncio/UDP on a real host).  The services run unchanged on all three.
"""

from repro.kernel.clock import Clock, PeriodicTimer, SimClock, TimerHandle
from repro.kernel.codec import (
    MESSAGE_KINDS,
    WIRE_SCHEMA_VERSION,
    CodecError,
    decode_message,
    encode_message,
)
from repro.kernel.runtime import EndpointLike, NodeRuntime
from repro.kernel.schema import BODY_SCHEMAS, BodySchema, payload_schema

__all__ = [
    "BODY_SCHEMAS",
    "BodySchema",
    "Clock",
    "CodecError",
    "EndpointLike",
    "MESSAGE_KINDS",
    "NodeRuntime",
    "PeriodicTimer",
    "SimClock",
    "TimerHandle",
    "WIRE_SCHEMA_VERSION",
    "decode_message",
    "encode_message",
    "payload_schema",
]
