"""Machine-readable body schemas for every wire message kind.

:mod:`repro.kernel.codec` *implements* the wire format — one
encoder/decoder pair per message kind.  This module *describes* it: a
pure-data registry (:data:`BODY_SCHEMAS`) of what each kind's
``Message.payload`` must look like at a construction site, introspectable
without importing the protocol, numpy, or the codec itself.

Two consumers rely on that purity:

* the static analyzer (``repro.analysis`` rule WIRE001) checks every
  ``Message(...)`` / ``make_reply(...)`` site in the services against
  these shapes without executing any protocol code;
* ``repro.kernel.codec`` asserts at import time that the schema registry
  and the codec registry list exactly the same kinds, so the two can
  never drift apart silently.

The shapes themselves are fixed by the §4 handshakes (PROTOCOL.md "Wire
format") and versioned by ``codec.WIRE_SCHEMA_VERSION`` — changing a
schema here without bumping the version is a wire-compat break, and the
codec cross-check plus ``tests/kernel/test_schema.py`` will say so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Payload categories a :class:`BodySchema` can take.  ``tuple`` payloads
#: are Python tuples with a fixed arity and named fields; the scalar
#: categories are single protocol objects (or None where allowed).
CATEGORIES = (
    "none",          # payload must be None
    "node_id",       # a NodeId
    "node_id_or_nonce",  # a NodeId, or (NodeId, nonce:int) with admission PoW
    "opt_pointer",   # a Pointer or None
    "event",         # an EventRecord
    "pointer_list",  # a list of Pointers
    "tuple",         # fixed-arity tuple; see fields/types
)


@dataclass(frozen=True)
class BodySchema:
    """The construction-site contract for one message kind's payload."""

    kind: str
    category: str
    #: Ordered field names for ``tuple`` payloads (empty otherwise).
    fields: Tuple[str, ...] = ()
    #: Human-readable type per field (tuple payloads), or one entry
    #: describing the whole payload (scalar categories).
    types: Tuple[str, ...] = ()
    doc: str = ""

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown payload category {self.category!r}")
        if self.category == "tuple" and not self.fields:
            raise ValueError(f"{self.kind}: tuple schema needs field names")
        if self.fields and len(self.fields) != len(self.types):
            raise ValueError(f"{self.kind}: fields/types length mismatch")

    @property
    def arity(self) -> Optional[int]:
        """Required tuple length, or None for non-tuple payloads."""
        return len(self.fields) if self.category == "tuple" else None

    @property
    def allows_none(self) -> bool:
        return self.category in ("none", "opt_pointer")

    @property
    def requires_payload(self) -> bool:
        """Must a construction site pass a non-None payload?"""
        return not self.allows_none

    def describe(self) -> str:
        """One-line shape, e.g. ``(level: int, ewma_rate: number, ...)``."""
        if self.category == "none":
            return "None"
        if self.category == "tuple":
            inner = ", ".join(
                f"{name}: {typ}" for name, typ in zip(self.fields, self.types)
            )
            return f"({inner})"
        return self.types[0] if self.types else self.category


def _schemas(*schemas: BodySchema) -> Dict[str, BodySchema]:
    out: Dict[str, BodySchema] = {}
    for schema in schemas:
        if schema.kind in out:
            raise ValueError(f"duplicate schema for kind {schema.kind!r}")
        out[schema.kind] = schema
    return out


#: kind -> payload schema; must stay in lock-step with
#: ``repro.kernel.codec._BODY_CODECS`` (the codec asserts it on import).
BODY_SCHEMAS: Dict[str, BodySchema] = _schemas(
    # failure detection (§4.1) and tree acks (§4.2)
    BodySchema("probe", "none", doc="§4.1 ring liveness probe"),
    BodySchema("probe-ack", "none", doc="§4.1 probe acknowledgement"),
    BodySchema("mcast-ack", "none", doc="§4.2 multicast hop acknowledgement"),
    BodySchema("bridge-ack", "none", doc="§8 bridge-copy acknowledgement"),
    # join handshake (§4.3)
    BodySchema(
        "get-top", "node_id_or_nonce",
        types=("NodeId | (NodeId, nonce: int)",),
        doc="joiner asks a bootstrap for the part's top node; the tuple "
            "form carries the DESIGN §16 admission proof-of-work nonce",
    ),
    BodySchema(
        "top-ptr", "opt_pointer", types=("Pointer | None",),
        doc="bootstrap's answer: the top node it believes in, if any",
    ),
    BodySchema(
        "level-query", "node_id", types=("NodeId",),
        doc="joiner asks the top for level guidance",
    ),
    BodySchema(
        "level-info", "tuple",
        fields=("level", "ewma_rate", "piggyback"),
        types=("int", "number", "[Pointer]"),
        doc="top's level recommendation plus piggybacked top pointers",
    ),
    BodySchema(
        "download", "tuple",
        fields=("requester_id", "prefix_len"),
        types=("NodeId", "int"),
        doc="§4.3 peer-list download request for one eigenstring prefix",
    ),
    BodySchema(
        "download-data", "tuple",
        fields=("matching", "tops"),
        types=("[Pointer]", "[Pointer]"),
        doc="download answer: prefix-matching pointers plus known tops",
    ),
    # dissemination (§4.2) and reporting (§4.5)
    BodySchema(
        "mcast", "tuple",
        fields=("event", "next_bit"),
        types=("EventRecord", "int"),
        doc="binomial-tree multicast hop: the event and the split bit",
    ),
    BodySchema(
        "event-copy", "event", types=("EventRecord",),
        doc="out-of-tree event copy (recent-download grace, bridges)",
    ),
    BodySchema(
        "report", "event", types=("EventRecord",),
        doc="§4.5 upward event report toward the part's top",
    ),
    BodySchema(
        "report-ack", "pointer_list", types=("[Pointer]",),
        doc="report acknowledgement carrying current top pointers",
    ),
    # maintenance (§4.4/§4.5 top-node exchange and part bridging)
    BodySchema("get-topnodes", "none", doc="ask a peer for its top list"),
    BodySchema(
        "topnodes", "pointer_list", types=("[Pointer]",),
        doc="answer to get-topnodes: the sender's top pointers",
    ),
    BodySchema(
        "bridge-subscribe", "tuple",
        fields=("pointer", "is_top"),
        types=("Pointer", "bool"),
        doc="§8 part-merge bridge subscription",
    ),
)

#: Every kind the wire knows, in sorted order (mirrors ``codec.MESSAGE_KINDS``).
MESSAGE_KINDS: Tuple[str, ...] = tuple(sorted(BODY_SCHEMAS))


def payload_schema(kind: str) -> BodySchema:
    """The schema for ``kind``; raises ``KeyError`` for unknown kinds."""
    return BODY_SCHEMAS[kind]
