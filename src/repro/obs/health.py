"""Protocol health SLOs: declarative specs, streaming evaluation, verdicts.

Where :mod:`repro.chaos.monitor` checks hard *safety* invariants (things
that must never be false), this module checks *statistical* service
levels — the quantities the paper itself bounds:

* multicast tree completeness and non-delivery (§4.2's reliable tree),
* measured-vs-analytic bandwidth ratio (§2's ``p = W·L/(m·r·i)``),
* peer-list error rate against §5.3's ``delay / lifetime`` envelope,
* failure-detector false positives (§4.1),
* join failure rate and multicast depth against the O(log n) bound.

A :class:`HealthSpec` is a list of :class:`Slo` bands — each a named
signal with optional lower/upper bounds — serializable to JSON so chaos
scenarios and CI can pin their expectations (``repro chaos --health
spec.json``).  :func:`HealthSpec.default` derives the bands from a
:class:`~repro.core.config.ProtocolConfig` plus the analytic model, so
the defaults tighten automatically when the config does.

Evaluation comes in two shapes:

* **post-hoc** — :func:`evaluate` over the signals of an
  :class:`~repro.obs.analyze.AnalysisReport` (plus metrics-derived
  signals from :func:`metrics_signals`);
* **streaming** — :class:`EwmaHealthMonitor` smooths noisy signals with
  an exponentially-weighted moving average before judging them, and
  :class:`LiveHealthMonitor` runs that inside a live sequential
  simulation on a periodic timer (the
  :class:`~repro.chaos.monitor.InvariantMonitor` pattern), attaching
  the in-flight trace ids of the worst node to each breach and
  optionally halting the run via :meth:`~repro.sim.engine.Simulator.stop`.

Determinism: evaluation is pure arithmetic over its inputs; the live
monitor samples on the simulated clock and sends no messages, so an
attached monitor never perturbs the protocol it judges.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.analytic import expected_error_rate, expected_multicast_steps
from repro.paths import prepare_output_path

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import ProtocolConfig

__all__ = [
    "EwmaHealthMonitor",
    "HealthSpec",
    "LiveHealthMonitor",
    "Slo",
    "Verdict",
    "evaluate",
    "metrics_signals",
]

#: Version stamp for serialized HealthSpec documents.
HEALTH_SPEC_VERSION = 1


@dataclass(frozen=True)
class Slo:
    """One service-level band over a named scalar signal.

    The signal is healthy iff ``lo <= value <= hi`` (either bound may be
    ``None`` = unbounded on that side).
    """

    name: str
    description: str = ""
    lo: Optional[float] = None
    hi: Optional[float] = None

    def ok(self, value: float) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "lo": self.lo,
            "hi": self.hi,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Slo":
        return cls(
            name=str(d["name"]),
            description=str(d.get("description", "")),
            lo=None if d.get("lo") is None else float(d["lo"]),
            hi=None if d.get("hi") is None else float(d["hi"]),
        )


@dataclass(frozen=True)
class Verdict:
    """The outcome of judging one :class:`Slo` against one value.

    ``traces`` carries trace ids implicated in the breach when the
    evaluator had any (live monitoring attaches the in-flight traces of
    the worst node; post-hoc evaluation may attach offending tree
    roots).
    """

    slo: str
    value: float
    lo: Optional[float]
    hi: Optional[float]
    ok: bool
    time: float = 0.0
    detail: str = ""
    traces: Tuple[str, ...] = ()

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else f"{self.lo:g}"
        hi = "inf" if self.hi is None else f"{self.hi:g}"
        band = f"[{lo}, {hi}]"
        state = "ok" if self.ok else "BREACH"
        text = f"{state} {self.slo}={self.value:.6g} band={band}"
        if self.detail:
            text += f" ({self.detail})"
        if self.traces:
            text += f" traces={','.join(self.traces[:5])}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "value": self.value,
            "lo": self.lo,
            "hi": self.hi,
            "ok": self.ok,
            "time": self.time,
            "detail": self.detail,
            "traces": list(self.traces),
        }


@dataclass
class HealthSpec:
    """A named collection of :class:`Slo` bands."""

    slos: List[Slo] = field(default_factory=list)
    name: str = "default"

    def __iter__(self):
        return iter(self.slos)

    def get(self, name: str) -> Optional[Slo]:
        for slo in self.slos:
            if slo.name == name:
                return slo
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": HEALTH_SPEC_VERSION,
            "name": self.name,
            "slos": [slo.to_dict() for slo in self.slos],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "HealthSpec":
        declared = d.get("schema_version", HEALTH_SPEC_VERSION)
        if not isinstance(declared, int) or declared > HEALTH_SPEC_VERSION:
            raise ValueError(
                f"health spec has schema_version {declared!r}; this build "
                f"reads <= {HEALTH_SPEC_VERSION}"
            )
        return cls(
            slos=[Slo.from_dict(s) for s in d.get("slos", [])],
            name=str(d.get("name", "default")),
        )

    def save(self, path: str) -> str:
        prepare_output_path(path, "health spec")
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True, indent=2)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "HealthSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    @classmethod
    def default(
        cls,
        config: "ProtocolConfig",
        n_nodes: int,
        mean_lifetime_s: float = 3600.0,
    ) -> "HealthSpec":
        """Derive SLO bands from the config and the §2/§5.3 model.

        The bands are deliberately generous — they flag *protocol-level*
        sickness (trees not forming, the detector burying live nodes,
        bandwidth an order of magnitude off the model), not benchmark
        noise.
        """
        # §5.3: staleness a peer list accumulates before an event
        # propagates = detection delay + the O(log n) multicast delay.
        detect = (
            config.probe_interval * config.probe_misses_to_fail
            + config.probe_timeout
        )
        mcast_delay = (
            expected_multicast_steps(max(2, n_nodes))
            * (config.multicast_processing_delay + config.multicast_ack_timeout)
        )
        err = expected_error_rate(detect + mcast_delay, mean_lifetime_s)
        depth_bound = math.ceil(expected_multicast_steps(max(2, n_nodes))) + 2
        return cls(
            name="default",
            slos=[
                Slo(
                    "mcast.tree_completeness",
                    "fraction of multicast spans whose parent chain "
                    "resolves to a recorded root (§4.2 tree integrity)",
                    lo=0.99,
                ),
                Slo(
                    "mcast.non_delivery_rate",
                    "multicast spans that died in flight or never closed",
                    hi=0.02,
                ),
                Slo(
                    "mcast.redirect_rate",
                    "stale-pointer redirects per multicast span "
                    "(§4.2 repair traffic)",
                    hi=0.20,
                ),
                Slo(
                    "mcast.max_depth",
                    "deepest observed tree level vs the O(log n) bound",
                    hi=float(min(depth_bound, config.id_bits)),
                ),
                Slo(
                    "mcast.ack_retry_rate",
                    "multicast ack timeouts per multicast message sent; "
                    "timeouts toward crashed peers are the §4.1 detection "
                    "path, so churn pushes this up — a systemic retry "
                    "storm (every send retried) approaches "
                    "(attempts-1)/attempts ≈ 0.67",
                    hi=0.5,
                ),
                Slo(
                    "bandwidth.model_ratio",
                    "measured multicast bits per event-member vs the §2 "
                    "model's W (acks/retries push it above 1; partial "
                    "audiences below)",
                    lo=0.2,
                    hi=5.0,
                ),
                Slo(
                    "peerlist.error_rate",
                    "measured stale+absent pointer fraction vs §5.3's "
                    "delay/lifetime envelope (3x headroom, 2% floor)",
                    hi=max(0.02, 3.0 * err),
                ),
                Slo(
                    "detector.false_positive_rate",
                    "obituaries whose subject was demonstrably alive "
                    "(§4.1 should only bury the dead)",
                    hi=0.05,
                ),
                Slo(
                    "join.failure_rate",
                    "§4.3 handshakes that exhausted retries",
                    hi=0.05,
                ),
            ],
        )

    @classmethod
    def byzantine(
        cls,
        config: "ProtocolConfig",
        n_nodes: int,
        mean_lifetime_s: float = 3600.0,
    ) -> "HealthSpec":
        """The default bands adapted for adversarial (DESIGN §16) runs,
        plus the ``byz.*`` invariant signals the byzantine runner emits.

        Three default bands are dropped because the adversary breaks
        their premises, not the protocol's:

        * ``mcast.tree_completeness`` / ``mcast.non_delivery_rate`` —
          targeted forgeries are *rootless by construction* (an eclipse
          send has no ``mcast.root``), so every adversary injection
          counts as an orphan hop regardless of how well the honest
          trees behave;
        * ``join.failure_rate`` — under admission control, *rejected*
          sybil joins are the success condition, not a failure.
        """
        dropped = {
            "mcast.tree_completeness",
            "mcast.non_delivery_rate",
            "join.failure_rate",
        }
        base = cls.default(config, n_nodes, mean_lifetime_s=mean_lifetime_s)
        slos = [slo for slo in base.slos if slo.name not in dropped]
        slos += [
            Slo(
                "byz.forged_evictions",
                "monitor ticks that caught a live forgery victim evicted "
                "from an honest peer list (§16: verify before believe)",
                hi=0.0,
            ),
            Slo(
                "byz.eclipse_isolation",
                "monitor ticks on which an eclipse victim's audience "
                "coverage fell below half",
                hi=0.0,
            ),
            Slo(
                "byz.sybil_fraction",
                "aggregate sybil share of honest peer-list slots at the "
                "end of the run (§16: PoW admission + join throttle keep "
                "sybils a small minority; per-node majority capture is "
                "the monitor's sybil-occupancy invariant)",
                hi=0.35,
            ),
            Slo(
                "byz.inflated_claims",
                "pointers still carrying a level-inflated claim after "
                "quiescence (§16: the claim audit demotes liars)",
                hi=0.0,
            ),
        ]
        return cls(name="byzantine", slos=slos)


def evaluate(
    spec: HealthSpec,
    signals: Dict[str, float],
    now: float = 0.0,
    traces: Optional[Dict[str, Tuple[str, ...]]] = None,
) -> List[Verdict]:
    """Judge every SLO whose signal is present in ``signals``.

    Missing signals are skipped rather than failed: an un-instrumented
    run (no metrics file, say) should not breach the SLOs it cannot
    measure.  Verdict order follows the spec, so output is deterministic.
    """
    verdicts: List[Verdict] = []
    for slo in spec:
        if slo.name not in signals:
            continue
        value = float(signals[slo.name])
        ok = slo.ok(value)
        verdicts.append(
            Verdict(
                slo=slo.name,
                value=value,
                lo=slo.lo,
                hi=slo.hi,
                ok=ok,
                time=now,
                detail=slo.description if not ok else "",
                traces=() if ok or traces is None else traces.get(slo.name, ()),
            )
        )
    return verdicts


def metrics_signals(
    snapshot: Dict[str, Any],
    config: "ProtocolConfig",
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, float]:
    """Signals derivable from a metrics snapshot (not from spans).

    * ``mcast.ack_retry_rate`` — ack timeouts per multicast sent;
    * ``bandwidth.model_ratio`` — measured multicast bits divided by the
      §2 prediction ``events × mean_list_size × i`` (every event should
      cost each audience member one ``i``-bit message, §4.2 redundancy
      ``r ≈ 1``);
    * ``peerlist.error_rate`` — passed through from run ``meta`` when the
      producer measured it against the membership oracle.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    nodes = snapshot.get("nodes", 0)
    signals: Dict[str, float] = {}

    mcast_msgs = counters.get("transport.msgs.mcast", 0)
    if mcast_msgs:
        signals["mcast.ack_retry_rate"] = (
            counters.get("mcast.ack_timeouts", 0) / mcast_msgs
        )

    events = counters.get("mcast.originated", 0)
    bits = counters.get("transport.bits.mcast", 0)
    total_pointers = sum(
        v for k, v in gauges.items() if k.startswith("peers.size.level.")
    )
    mean_list = total_pointers / nodes if nodes else 0.0
    predicted = events * mean_list * config.event_message_bits
    if predicted > 0:
        signals["bandwidth.model_ratio"] = bits / predicted

    if meta and "mean_error_rate" in meta:
        signals["peerlist.error_rate"] = float(meta["mean_error_rate"])
    return signals


class EwmaHealthMonitor:
    """Streaming SLO evaluation over EWMA-smoothed signals.

    ``alpha`` is the usual smoothing factor (1 = no smoothing); the
    first ``warmup`` observations of each signal update the average but
    produce no verdicts, so start-up transients (empty peer lists, no
    traffic yet) cannot fire spurious breaches.
    """

    def __init__(self, spec: HealthSpec, alpha: float = 0.3, warmup: int = 2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.spec = spec
        self.alpha = alpha
        self.warmup = warmup
        self._ewma: Dict[str, float] = {}
        self._count: Dict[str, int] = {}

    def smoothed(self, name: str) -> Optional[float]:
        return self._ewma.get(name)

    def observe(
        self,
        signals: Dict[str, float],
        now: float = 0.0,
        traces: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> List[Verdict]:
        """Fold one sample in; judge the signals that are past warm-up."""
        ready: Dict[str, float] = {}
        for name in sorted(signals):
            value = float(signals[name])
            prev = self._ewma.get(name)
            cur = value if prev is None else (
                self.alpha * value + (1.0 - self.alpha) * prev
            )
            self._ewma[name] = cur
            seen = self._count.get(name, 0) + 1
            self._count[name] = seen
            if seen > self.warmup:
                ready[name] = cur
        return evaluate(self.spec, ready, now=now, traces=traces)


class LiveHealthMonitor:
    """Periodic in-simulation health checks over a sequential network.

    Samples metrics-derived signals plus the live peer-list error rate
    every ``interval`` simulated seconds, EWMA-smooths them, and records
    breaches as :class:`Verdict` objects (in :attr:`verdicts`).  With
    ``halt_on_breach`` the simulator is stopped on the first breach so
    long experiments fail fast.

    Sequential-engine only, like
    :meth:`~repro.core.protocol.PeerWindowNetwork.enable_monitoring` —
    partitioned runs evaluate the same spec post-hoc instead.
    """

    def __init__(
        self,
        net,
        spec: HealthSpec,
        interval: float = 30.0,
        alpha: float = 0.3,
        warmup: int = 2,
        halt_on_breach: bool = False,
        gate=None,
    ):
        if net.parallel is not None:
            raise NotImplementedError(
                "LiveHealthMonitor requires the sequential engine; "
                "evaluate the spec post-hoc for partitioned runs"
            )
        self.net = net
        self.spec = spec
        self.interval = interval
        self.halt_on_breach = halt_on_breach
        #: Optional ``() -> bool`` judged-now predicate.  When it returns
        #: False the sample still feeds the EWMA but breaches are not
        #: recorded — chaos runs gate on quiescence so SLOs judge the
        #: *recovered* network, not the middle of an injected partition.
        self.gate = gate
        self.ewma = EwmaHealthMonitor(spec, alpha=alpha, warmup=warmup)
        self.verdicts: List[Verdict] = []
        self.samples = 0
        self._task = None

    def start(self) -> None:
        self._task = self.net.sim.every(
            self.interval, self.check, start_delay=self.interval
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    @property
    def breaches(self) -> List[Verdict]:
        return [v for v in self.verdicts if not v.ok]

    def _breach_traces(self) -> Dict[str, Tuple[str, ...]]:
        """In-flight trace ids of the node with the worst error rate —
        the most likely witnesses to whatever is unhealthy."""
        obs = getattr(self.net, "obs", None)
        if obs is None or not obs.enabled:
            return {}
        worst_key = None
        worst = -1.0
        for node in self.net.live_nodes():
            rate = self.net.node_error_rate(node)
            if rate > worst:
                worst, worst_key = rate, node.address
        if worst_key is None:
            return {}
        open_traces = tuple(obs.open_traces(worst_key))
        return {slo.name: open_traces for slo in self.spec}

    def check(self) -> None:
        self.samples += 1
        net = self.net
        signals = metrics_signals(net.metrics_snapshot(), net.config)
        signals["peerlist.error_rate"] = net.mean_error_rate()
        verdicts = self.ewma.observe(
            signals, now=net.sim.now, traces=self._breach_traces()
        )
        if self.gate is not None and not self.gate():
            return
        breached = [v for v in verdicts if not v.ok]
        self.verdicts.extend(breached)
        if breached and self.halt_on_breach:
            net.sim.stop()
