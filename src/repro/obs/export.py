"""Exporters: span JSONL, Chrome ``trace_event``, metrics JSON/CSV.

All writers are dependency-free and route their paths through
:func:`prepare_output_path`, which creates missing parent directories
and converts unwritable destinations into a clear :class:`OSError`
instead of a raw ``FileNotFoundError`` deep in ``open``.

The JSONL span format is one object per line with the fields listed in
``SPAN_REQUIRED_FIELDS``; :func:`validate_span_lines` is the schema
check used by the test suite and the ``scripts/check.sh`` smoke step.

Versioning: :func:`write_spans_jsonl` stamps a header line — a JSON
object carrying ``schema_version`` (and no ``span_id``) — before the
span records, and :func:`write_metrics_json` stamps ``schema_version``
into the snapshot document.  Loaders (``repro.obs.analyze``) treat a
headerless file as version 0 and upconvert; anything newer than the
versions declared here is rejected with a clear error rather than
silently misread.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Iterable, List, Sequence

from repro.obs.trace import Span
from repro.paths import prepare_output_path

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "SPAN_REQUIRED_FIELDS",
    "SPAN_SCHEMA_VERSION",
    "prepare_output_path",
    "profile_rows",
    "span_from_dict",
    "span_header_line",
    "span_to_dict",
    "spans_to_chrome",
    "spans_to_jsonl",
    "validate_span_file",
    "validate_span_lines",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
    "write_spans_jsonl",
]

#: Version of the span JSONL format written by :func:`write_spans_jsonl`.
#: Bump on any breaking change to ``SPAN_REQUIRED_FIELDS`` or the
#: header; version 0 means "headerless PR 3 export".
SPAN_SCHEMA_VERSION = 1

#: Version of the metrics JSON snapshot document.
METRICS_SCHEMA_VERSION = 1

#: Field -> allowed JSON types for one exported span object.
SPAN_REQUIRED_FIELDS: Dict[str, tuple] = {
    "trace_id": (str,),
    "span_id": (str,),
    "parent_id": (str, type(None)),
    "name": (str,),
    "node": (str,),
    "start": (int, float),
    "end": (int, float, type(None)),
    "status": (str,),
    "attrs": (dict,),
}


def span_to_dict(span: Span) -> Dict[str, Any]:
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "node": str(span.node),
        "start": span.start,
        "end": span.end,
        "status": span.status,
        "attrs": span.attrs,
    }


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    out = io.StringIO()
    for span in spans:
        json.dump(span_to_dict(span), out, sort_keys=True,
                  separators=(",", ":"))
        out.write("\n")
    return out.getvalue()


def span_from_dict(obj: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` from one exported JSONL object."""
    span = Span(
        trace_id=obj["trace_id"],
        span_id=obj["span_id"],
        parent_id=obj["parent_id"],
        name=obj["name"],
        node=obj["node"],
        start=obj["start"],
        attrs=dict(obj["attrs"]),
    )
    span.end = obj["end"]
    span.status = obj["status"]
    return span


def span_header_line() -> str:
    """The version header written as the first line of a span JSONL
    export.  It is an ordinary JSON object — but has no ``span_id`` —
    so version-unaware line consumers can skip it cheaply."""
    return json.dumps(
        {"schema": "repro.span", "schema_version": SPAN_SCHEMA_VERSION},
        sort_keys=True,
        separators=(",", ":"),
    )


def write_spans_jsonl(path: str, spans: Iterable[Span]) -> str:
    prepare_output_path(path, "span JSONL")
    text = spans_to_jsonl(spans)
    with open(path, "w") as fh:
        fh.write(span_header_line() + "\n")
        fh.write(text)
    return path


def spans_to_chrome(spans: Iterable[Span]) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON (load via about://tracing / Perfetto).

    Completed spans become ``"X"`` complete events; still-open spans are
    emitted as zero-duration ``"i"`` instants so nothing disappears.
    Simulated seconds map to microseconds (the format's native unit);
    each node renders as its own thread row.
    """
    events: List[Dict[str, Any]] = []
    for span in spans:
        args = dict(span.attrs)
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["status"] = span.status
        base = {
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ts": span.start * 1e6,
            "pid": 1,
            "tid": str(span.node),
            "args": args,
        }
        if span.end is None:
            events.append({**base, "ph": "i", "s": "t"})
        else:
            events.append({**base, "ph": "X", "dur": (span.end - span.start) * 1e6})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[Span]) -> str:
    prepare_output_path(path, "Chrome trace")
    doc = spans_to_chrome(spans)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
    return path


def write_metrics_json(
    path: str, snapshot: Dict[str, Any], meta: Dict[str, Any] | None = None
) -> str:
    """Write a metrics snapshot, stamped with ``schema_version`` (and an
    optional ``meta`` block describing the run that produced it)."""
    doc = dict(snapshot)
    doc["schema_version"] = METRICS_SCHEMA_VERSION
    if meta is not None:
        doc["meta"] = meta
    prepare_output_path(path, "metrics JSON")
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=2)
        fh.write("\n")
    return path


def write_metrics_csv(path: str, snapshot: Dict[str, Any]) -> str:
    from repro.obs.metrics import flatten_snapshot

    prepare_output_path(path, "metrics CSV")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["kind", "name", "value"])
        writer.writerows(flatten_snapshot(snapshot))
    return path


def validate_span_lines(lines: Iterable[str]) -> List[str]:
    """Schema-check JSONL span lines; returns a list of problems
    (empty = valid).  Beyond per-line field/type checks it verifies
    referential integrity: every non-null ``parent_id`` must name a
    span in the file and share its trace id.
    """
    problems: List[str] = []
    spans: Dict[str, Dict[str, Any]] = {}
    parsed: List[Dict[str, Any]] = []
    for i, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {i}: not valid JSON ({exc})")
            continue
        if not isinstance(obj, dict):
            problems.append(f"line {i}: expected an object")
            continue
        if "schema_version" in obj and "span_id" not in obj:
            # The version header.  Headerless files (version 0) are
            # accepted here; the loader decides upconvert-vs-reject.
            version = obj["schema_version"]
            if not isinstance(version, int) or version > SPAN_SCHEMA_VERSION:
                problems.append(
                    f"line {i}: unsupported schema_version {version!r} "
                    f"(this build reads <= {SPAN_SCHEMA_VERSION})"
                )
            continue
        for field, types in SPAN_REQUIRED_FIELDS.items():
            if field not in obj:
                problems.append(f"line {i}: missing field {field!r}")
            elif not isinstance(obj[field], types):
                problems.append(
                    f"line {i}: field {field!r} has type "
                    f"{type(obj[field]).__name__}"
                )
        if "span_id" in obj and isinstance(obj.get("span_id"), str):
            if obj["span_id"] in spans:
                problems.append(f"line {i}: duplicate span_id {obj['span_id']!r}")
            spans[obj["span_id"]] = obj
            parsed.append(obj)
    for obj in parsed:
        parent_id = obj.get("parent_id")
        if parent_id is None:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            problems.append(
                f"span {obj['span_id']!r}: parent {parent_id!r} not in file"
            )
        elif parent.get("trace_id") != obj.get("trace_id"):
            problems.append(
                f"span {obj['span_id']!r}: trace_id differs from parent "
                f"{parent_id!r}"
            )
    return problems


def validate_span_file(path: str) -> List[str]:
    with open(path) as fh:
        return validate_span_lines(fh)


def profile_rows(profile: Dict[str, Dict[str, float]]) -> List[Sequence]:
    """Table rows for a ``PhaseProfiler.snapshot()``."""
    return [
        [phase, stats["calls"], round(stats["seconds"], 4),
         round(stats["mean_us"], 1)]
        for phase, stats in profile.items()
    ]
