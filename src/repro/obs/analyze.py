"""Span-tree analytics: reload exports, rebuild operation trees, aggregate.

This is the read side of :mod:`repro.obs` — PR 3's exporters write span
JSONL and metrics JSON; this module loads them back (schema-validated,
versioned), reconstructs the cross-node operation trees that
``Message.trace`` parenting encodes, and reduces them to the aggregates
the paper's model predicts:

* **multicast** (§4.2) — every ``mcast.root`` plus the ``mcast.hop``
  spans reachable from it forms one dissemination tree; we measure tree
  completeness (every hop's parent chain resolves to a root in the log),
  depth against the O(log n) bound, fan-out, completion latency,
  redirect and non-delivery rates, per-kind / per-depth / per-root
  breakdowns;
* **join** (§4.3) — handshake count, failure rate, and warm-up duration
  (the ``join`` span covers get-top → level-query → download);
* **probe/obituary** (§4.1) — probe RTT and timeout rate, obituaries by
  cause, and detector false positives (an obituary whose subject
  demonstrably kept operating without rejoining).

Everything here is pure arithmetic over the loaded spans — no RNG, no
wall clock, no dict-order dependence — so analyzing the same log twice
yields byte-identical reports (the determinism contract the report CLI
tests pin down).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.export import (
    SPAN_REQUIRED_FIELDS,
    SPAN_SCHEMA_VERSION,
    span_from_dict,
)
from repro.obs.metrics import Dist
from repro.obs.trace import Span

__all__ = [
    "AnalysisReport",
    "MulticastTree",
    "SchemaError",
    "TraceForest",
    "analyze_file",
    "analyze_spans",
    "load_metrics",
    "load_spans",
]

#: Span names that participate in a multicast dissemination tree.
_MCAST_NAMES = ("mcast.root", "mcast.hop")


class SchemaError(ValueError):
    """A span/metrics export could not be loaded: wrong schema version
    or malformed records.  The message says which and what to do."""


def _check_span_obj(obj: Any, where: str) -> Dict[str, Any]:
    if not isinstance(obj, dict):
        raise SchemaError(f"{where}: expected a JSON object, got "
                          f"{type(obj).__name__}")
    for fieldname, types in SPAN_REQUIRED_FIELDS.items():
        if fieldname not in obj:
            raise SchemaError(f"{where}: missing field {fieldname!r}")
        if not isinstance(obj[fieldname], types):
            raise SchemaError(
                f"{where}: field {fieldname!r} has type "
                f"{type(obj[fieldname]).__name__}"
            )
    return obj


def load_span_lines(lines: Iterable[str]) -> Tuple[List[Span], int, int]:
    """Parse span JSONL lines into :class:`Span` objects.

    Returns ``(spans, schema_version, lines_skipped)``.  A headerless
    file — the PR 3 format — is version 0 and upconverts transparently
    (the span record shape is unchanged between 0 and 1); a header newer
    than :data:`SPAN_SCHEMA_VERSION` raises :class:`SchemaError` so a
    stale analyzer never silently misreads a future export.

    Malformed or truncated records — a live node killed mid-write leaves
    a partial last line — are **skipped and counted**, not fatal: a
    crash is exactly when the surviving spans matter most.  The count
    surfaces in :attr:`AnalysisReport.lines_skipped` so a corrupted log
    is never mistaken for a clean one.
    """
    spans: List[Span] = []
    version = 0
    skipped = 0
    for i, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if isinstance(obj, dict) and "schema_version" in obj and "span_id" not in obj:
            declared = obj["schema_version"]
            if not isinstance(declared, int) or declared > SPAN_SCHEMA_VERSION:
                raise SchemaError(
                    f"line {i}: span log has schema_version {declared!r} but "
                    f"this build reads <= {SPAN_SCHEMA_VERSION}; re-export "
                    f"with a matching version or upgrade the analyzer"
                )
            version = declared
            continue
        try:
            spans.append(span_from_dict(_check_span_obj(obj, f"line {i}")))
        except SchemaError:
            skipped += 1
    return spans, version, skipped


def load_spans(path: str) -> Tuple[List[Span], int, int]:
    """Load a span JSONL export from disk (see :func:`load_span_lines`)."""
    with open(path) as fh:
        return load_span_lines(fh)


def load_metrics(path: str) -> Dict[str, Any]:
    """Load a metrics JSON snapshot, enforcing its ``schema_version``.

    Headerless documents (PR 3) are version 0 and load as-is; newer than
    :data:`~repro.obs.export.METRICS_SCHEMA_VERSION` raises
    :class:`SchemaError`.
    """
    from repro.obs.export import METRICS_SCHEMA_VERSION

    with open(path) as fh:
        try:
            doc = json.load(fh)
        except ValueError as exc:
            raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: expected a JSON object")
    declared = doc.get("schema_version", 0)
    if not isinstance(declared, int) or declared > METRICS_SCHEMA_VERSION:
        raise SchemaError(
            f"{path}: metrics snapshot has schema_version {declared!r} but "
            f"this build reads <= {METRICS_SCHEMA_VERSION}"
        )
    return doc


class TraceForest:
    """Index over a span log: by id, by trace, parent -> children."""

    def __init__(self, spans: Iterable[Span]):
        self.spans: List[Span] = list(spans)
        self.by_id: Dict[str, Span] = {}
        self.children: Dict[str, List[Span]] = {}
        self.by_trace: Dict[str, List[Span]] = {}
        for span in self.spans:
            self.by_id[span.span_id] = span
            self.by_trace.setdefault(span.trace_id, []).append(span)
            if span.parent_id is not None:
                self.children.setdefault(span.parent_id, []).append(span)
        # Deterministic traversal order regardless of input order.
        for kids in self.children.values():
            kids.sort(key=lambda s: (s.start, s.span_id))
        for group in self.by_trace.values():
            group.sort(key=lambda s: (s.start, s.span_id))

    def descendants(self, root: Span) -> List[Span]:
        """``root`` plus everything reachable through ``parent_id`` links,
        in deterministic pre-order."""
        out: List[Span] = []
        stack = [root]
        while stack:
            span = stack.pop()
            out.append(span)
            stack.extend(reversed(self.children.get(span.span_id, [])))
        return out

    def resolves_to_root(self, span: Span, root_names: Tuple[str, ...]) -> bool:
        """Whether the ancestor chain of ``span`` reaches a span named in
        ``root_names`` without leaving the log (cycle-guarded)."""
        seen = set()
        cur: Optional[Span] = span
        while cur is not None:
            if cur.name in root_names:
                return True
            if cur.span_id in seen:
                return False
            seen.add(cur.span_id)
            cur = self.by_id.get(cur.parent_id) if cur.parent_id else None
        return False


@dataclass
class MulticastTree:
    """One reconstructed §4.2 dissemination tree."""

    root: Span
    members: List[Span]          # root + hops, pre-order
    redirects: int
    kind: str

    @property
    def depth(self) -> int:
        return max(int(s.attrs.get("depth", 0)) for s in self.members)

    @property
    def delivered(self) -> int:
        return sum(1 for s in self.members if s.status == "ok")

    @property
    def undelivered(self) -> int:
        """Hops that died mid-flight or never closed."""
        return sum(
            1 for s in self.members if s.status == "died" or s.end is None
        )

    @property
    def completion_latency(self) -> Optional[float]:
        ends = [s.end for s in self.members if s.end is not None]
        return (max(ends) - self.root.start) if ends else None

    def fanouts(self) -> List[float]:
        return [
            float(s.attrs["fanout"]) for s in self.members
            if "fanout" in s.attrs
        ]


def _dist_of(values: Iterable[float]) -> Dist:
    dist = Dist()
    for v in values:
        dist.observe(v)
    return dist


def _dist_dict(dist: Dist) -> Dict[str, float]:
    d = dist.as_dict()
    # sumsq is an accumulator detail, not a reported statistic.
    d.pop("sumsq", None)
    return d


@dataclass
class AnalysisReport:
    """Deterministic aggregate view of one span log."""

    schema_version: int
    spans_total: int
    nodes: int
    sim_span: Tuple[float, float]
    #: Malformed/truncated JSONL lines the loader skipped (0 for a
    #: clean log; see :func:`load_span_lines`).
    lines_skipped: int = 0

    # multicast
    trees: List[MulticastTree] = field(default_factory=list)
    mcast_spans_total: int = 0
    mcast_spans_in_complete_trees: int = 0
    orphan_hops: int = 0
    redirects_total: int = 0

    # join / probe / obituary
    joins_ok: int = 0
    joins_failed: int = 0
    join_warmup: Dist = field(default_factory=Dist)
    probes: int = 0
    probe_timeouts: int = 0
    probe_rtt: Dist = field(default_factory=Dist)
    obituaries_by_via: Dict[str, int] = field(default_factory=dict)
    false_obituaries: int = 0

    @property
    def tree_completeness(self) -> float:
        """Fraction of multicast spans whose ancestor chain resolves to a
        root present in the log — the ≥ 0.99 acceptance signal."""
        if self.mcast_spans_total == 0:
            return 1.0
        return self.mcast_spans_in_complete_trees / self.mcast_spans_total

    @property
    def non_delivery_rate(self) -> float:
        if self.mcast_spans_total == 0:
            return 0.0
        undelivered = sum(t.undelivered for t in self.trees) + self.orphan_hops
        return undelivered / self.mcast_spans_total

    @property
    def redirect_rate(self) -> float:
        if self.mcast_spans_total == 0:
            return 0.0
        return self.redirects_total / self.mcast_spans_total

    @property
    def max_depth(self) -> int:
        return max((t.depth for t in self.trees), default=0)

    @property
    def join_failure_rate(self) -> float:
        total = self.joins_ok + self.joins_failed
        return self.joins_failed / total if total else 0.0

    @property
    def probe_timeout_rate(self) -> float:
        return self.probe_timeouts / self.probes if self.probes else 0.0

    @property
    def detector_false_positive_rate(self) -> float:
        total = sum(self.obituaries_by_via.values())
        return self.false_obituaries / total if total else 0.0

    def per_kind(self) -> Dict[str, Dict[str, Any]]:
        """Tree stats grouped by event kind (JOIN/LEAVE/REFRESH)."""
        out: Dict[str, Dict[str, Any]] = {}
        for kind in sorted({t.kind for t in self.trees}):
            trees = [t for t in self.trees if t.kind == kind]
            latencies = [
                t.completion_latency for t in trees
                if t.completion_latency is not None
            ]
            out[kind] = {
                "trees": len(trees),
                "depth": _dist_dict(_dist_of(float(t.depth) for t in trees)),
                "completion_latency": _dist_dict(_dist_of(latencies)),
            }
        return out

    def per_depth(self) -> Dict[str, int]:
        """Span count at each tree level — the per-level breakdown."""
        counts: Dict[int, int] = {}
        for tree in self.trees:
            for span in tree.members:
                d = int(span.attrs.get("depth", 0))
                counts[d] = counts.get(d, 0) + 1
        return {str(d): counts[d] for d in sorted(counts)}

    def per_root(self) -> Dict[str, int]:
        """Trees originated per root node — the per-part breakdown proxy
        (each eigenstring part multicasts through its own top nodes)."""
        counts: Dict[str, int] = {}
        for tree in self.trees:
            node = str(tree.root.node)
            counts[node] = counts.get(node, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    def signals(self) -> Dict[str, float]:
        """The scalar signals the health engine evaluates SLOs over."""
        return {
            "mcast.tree_completeness": self.tree_completeness,
            "mcast.non_delivery_rate": self.non_delivery_rate,
            "mcast.redirect_rate": self.redirect_rate,
            "mcast.max_depth": float(self.max_depth),
            "mcast.trees": float(len(self.trees)),
            "join.failure_rate": self.join_failure_rate,
            "join.warmup_mean": self.join_warmup.mean,
            "probe.timeout_rate": self.probe_timeout_rate,
            "detector.false_positive_rate": self.detector_false_positive_rate,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-stable summary (tree list reduced to aggregates)."""
        latencies = [
            t.completion_latency for t in self.trees
            if t.completion_latency is not None
        ]
        return {
            "schema_version": self.schema_version,
            "spans_total": self.spans_total,
            "lines_skipped": self.lines_skipped,
            "nodes": self.nodes,
            "sim_span": list(self.sim_span),
            "multicast": {
                "trees": len(self.trees),
                "spans": self.mcast_spans_total,
                "spans_in_complete_trees": self.mcast_spans_in_complete_trees,
                "orphan_hops": self.orphan_hops,
                "tree_completeness": self.tree_completeness,
                "non_delivery_rate": self.non_delivery_rate,
                "redirects": self.redirects_total,
                "redirect_rate": self.redirect_rate,
                "max_depth": self.max_depth,
                "depth": _dist_dict(
                    _dist_of(float(t.depth) for t in self.trees)
                ),
                "fanout": _dist_dict(
                    _dist_of(f for t in self.trees for f in t.fanouts())
                ),
                "completion_latency": _dist_dict(_dist_of(latencies)),
                "per_kind": self.per_kind(),
                "per_depth": self.per_depth(),
                "per_root": self.per_root(),
            },
            "join": {
                "ok": self.joins_ok,
                "failed": self.joins_failed,
                "failure_rate": self.join_failure_rate,
                "warmup": _dist_dict(self.join_warmup),
            },
            "probe": {
                "count": self.probes,
                "timeouts": self.probe_timeouts,
                "timeout_rate": self.probe_timeout_rate,
                "rtt": _dist_dict(self.probe_rtt),
            },
            "obituaries": {
                "by_via": dict(sorted(self.obituaries_by_via.items())),
                "false_positives": self.false_obituaries,
                "false_positive_rate": self.detector_false_positive_rate,
            },
            "signals": self.signals(),
        }


def _false_obituary(
    forest: TraceForest,
    obituary: Span,
    spans_by_node: Dict[str, List[Span]],
) -> bool:
    """An obituary is a detector false positive when its subject keeps
    producing spans afterwards *without rejoining first* — a node that
    really crashed and recovered re-enters through a ``join`` span."""
    subject = obituary.attrs.get("subject")
    if subject is None:
        return False
    for span in spans_by_node.get(str(subject), ()):
        if span.start <= obituary.start:
            continue
        # First post-obituary activity decides: a rejoin means the death
        # was real; anything else means we buried a live node.
        return span.name != "join"
    return False


def analyze_spans(spans: List[Span], schema_version: int = SPAN_SCHEMA_VERSION
                  ) -> AnalysisReport:
    """Reduce a span log to an :class:`AnalysisReport` (pure function)."""
    forest = TraceForest(spans)
    nodes = {str(s.node) for s in spans}
    starts = [s.start for s in spans]
    ends = [s.end for s in spans if s.end is not None]
    report = AnalysisReport(
        schema_version=schema_version,
        spans_total=len(spans),
        nodes=len(nodes),
        sim_span=(
            min(starts) if starts else 0.0,
            max(ends + starts) if starts else 0.0,
        ),
    )

    spans_by_node: Dict[str, List[Span]] = {}
    for span in sorted(forest.spans, key=lambda s: (s.start, s.span_id)):
        spans_by_node.setdefault(str(span.node), []).append(span)

    # -- multicast trees --------------------------------------------------
    mcast = [s for s in forest.spans if s.name in _MCAST_NAMES]
    report.mcast_spans_total = len(mcast)
    roots = sorted(
        (s for s in mcast if s.name == "mcast.root"),
        key=lambda s: (s.start, s.span_id),
    )
    claimed: set = set()
    for root in roots:
        members = [
            s for s in forest.descendants(root) if s.name in _MCAST_NAMES
        ]
        redirects = sum(
            1 for s in forest.descendants(root) if s.name == "mcast.redirect"
        )
        claimed.update(s.span_id for s in members)
        report.trees.append(
            MulticastTree(
                root=root,
                members=members,
                redirects=redirects,
                kind=str(root.attrs.get("kind", "?")),
            )
        )
    report.redirects_total = sum(t.redirects for t in report.trees)
    for span in mcast:
        if forest.resolves_to_root(span, ("mcast.root",)):
            report.mcast_spans_in_complete_trees += 1
    report.orphan_hops = sum(
        1 for s in mcast if s.span_id not in claimed
    )

    # -- joins / probes / obituaries -------------------------------------
    for span in forest.spans:
        if span.name == "join":
            if span.status == "ok":
                report.joins_ok += 1
                if span.end is not None:
                    report.join_warmup.observe(span.end - span.start)
            elif span.status in ("failed", "died"):
                report.joins_failed += 1
        elif span.name in ("probe", "probe.verify"):
            report.probes += 1
            if span.status == "timeout":
                report.probe_timeouts += 1
            elif span.status == "ok" and span.end is not None:
                report.probe_rtt.observe(span.end - span.start)
        elif span.name == "obituary":
            via = str(span.attrs.get("via", "?"))
            report.obituaries_by_via[via] = (
                report.obituaries_by_via.get(via, 0) + 1
            )
            if _false_obituary(forest, span, spans_by_node):
                report.false_obituaries += 1
    return report


def analyze_file(path: str) -> AnalysisReport:
    """Load + analyze a span JSONL export."""
    spans, version, skipped = load_spans(path)
    report = analyze_spans(spans, schema_version=version)
    report.lines_skipped = skipped
    return report
