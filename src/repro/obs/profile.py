"""Wall-clock phase profiling for the simulation engines.

Unlike tracing and metrics (which record *simulated* behaviour and must
be deterministic), the profiler answers a host-machine question — where
does real CPU time go? — so it uses ``time.perf_counter`` and its output
is explicitly non-deterministic.  It is therefore kept out of every
equivalence check and never written into chaos traces.

Hook points (installed by ``PeerWindowNetwork.enable_profiling``):

* ``sim.dispatch`` — event-callback execution in ``Simulator.step``;
* ``transport.deliver`` — receiver-handler execution in
  ``Transport._deliver``;
* ``parallel.lp_run`` / ``parallel.barrier`` — per-epoch LP execution
  and synchronization in ``ParallelSimulator.run``.

Each logical process gets its **own** profiler (thread-confined, like
span buffers); :func:`merge_profiles` folds them for reporting.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable


class PhaseProfiler:
    """Accumulates ``calls`` and total wall seconds per named phase."""

    __slots__ = ("calls", "seconds")

    def __init__(self):
        self.calls: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    def add(self, phase: str, elapsed: float, calls: int = 1) -> None:
        self.calls[phase] = self.calls.get(phase, 0) + calls
        self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed

    def time(self, phase: str, fn, *args):
        """Run ``fn(*args)`` and attribute its wall time to ``phase``."""
        t0 = time.perf_counter()
        try:
            return fn(*args)
        finally:
            self.add(phase, time.perf_counter() - t0)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            phase: {
                "calls": self.calls[phase],
                "seconds": self.seconds[phase],
                "mean_us": (self.seconds[phase] / self.calls[phase] * 1e6
                            if self.calls[phase] else 0.0),
            }
            for phase in sorted(self.seconds)
        }


def merge_profiles(profilers: Iterable[PhaseProfiler]) -> PhaseProfiler:
    """Fold per-LP profilers into one (for the network-wide report)."""
    merged = PhaseProfiler()
    for prof in profilers:
        for phase, secs in prof.seconds.items():
            merged.add(phase, secs, prof.calls.get(phase, 0))
    return merged
