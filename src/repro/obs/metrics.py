"""Protocol metrics: deterministic counters, gauges, and distributions.

Each node owns a :class:`MetricsRegistry` (reachable as
``ctx.obs.registry``); the instrumentation sites record the signals the
paper's cost model predicts — multicast fan-out and depth, redirect
rate, ack timeouts, probe RTT, join latency, peer-list size per level,
bytes by message kind — and :func:`aggregate_snapshots` folds all node
registries into one network-wide view for comparison against
``repro.core.analytic``.

Design constraints (shared with :mod:`repro.obs.trace`):

* a **disabled** registry turns every ``inc``/``observe`` into a single
  ``if`` — the default for all simulations, keeping the no-op overhead
  within the benchmarked budget;
* everything is exact arithmetic on the recorded values — no sampling,
  no RNG, no wall clock — so snapshots are byte-identical between
  sequential and partitioned runs of the same seed;
* distributions are moment accumulators (count/sum/sumsq/min/max)
  rather than binned histograms: mergeable across nodes without a
  pre-agreed bin layout, and enough to report mean/stdev/extremes.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

#: The documented metric-name convention: lowercase dotted
#: ``subsystem.noun_verb`` segments (``mcast.ack_timeouts``,
#: ``join.latency``).  detlint's OBS002 enforces it statically; the
#: catalog below enforces it at declaration time.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

_METRIC_KINDS = ("counter", "gauge", "dist")


class MetricSpec(NamedTuple):
    """One declared metric: its canonical name, kind, and meaning."""

    name: str
    kind: str
    help: str
    #: Prefix metrics gain a dynamic final segment at record time
    #: (``peers.size.level`` -> ``peers.size.level.3``).
    per_key: bool = False


#: Every metric the instrumentation may record, keyed by canonical name.
#: Call sites import the declared constants instead of retyping string
#: literals (detlint OBS002 flags ad-hoc literals), so a typo'd name is a
#: NameError at import instead of a silently empty series.
METRIC_CATALOG: Dict[str, MetricSpec] = {}


def declare_metric(name: str, kind: str, help: str, per_key: bool = False) -> str:
    """Register one metric in :data:`METRIC_CATALOG`; returns ``name`` so
    declarations double as the constants call sites import."""
    if not METRIC_NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} violates the subsystem.noun_verb "
            f"convention ({METRIC_NAME_RE.pattern})"
        )
    if kind not in _METRIC_KINDS:
        raise ValueError(f"metric kind {kind!r} not one of {_METRIC_KINDS}")
    if name in METRIC_CATALOG:
        raise ValueError(f"metric {name!r} declared twice")
    # Import-time declaration registry: populated only while modules
    # load, frozen before any LP runs (declared-twice guard above).
    METRIC_CATALOG[name] = MetricSpec(name, kind, help, per_key)  # detlint: ignore[ISO003]
    return name


def known_metric(name: str) -> bool:
    """Whether ``name`` is declared — directly, or as ``prefix.key`` of a
    ``per_key`` declaration."""
    spec = METRIC_CATALOG.get(name)
    if spec is not None:
        return not spec.per_key
    prefix = name.rsplit(".", 1)[0] if "." in name else name
    spec = METRIC_CATALOG.get(prefix)
    return spec is not None and spec.per_key


# -- the catalog -----------------------------------------------------------

PROBE_RTT = declare_metric(
    "probe.rtt", "dist", "round-trip seconds of answered §4.1 ring probes")
PROBE_TIMEOUTS = declare_metric(
    "probe.timeouts", "counter", "ring/verify probes that got no ack in time")
FAILURES_DETECTED = declare_metric(
    "failures.detected", "counter", "probe-based failure declarations (§4.1)")
JOIN_LATENCY = declare_metric(
    "join.latency", "dist", "seconds from join_via to installed state (§4.3)")
JOIN_FAILURES = declare_metric(
    "join.failures", "counter", "joining handshakes that exhausted retries")
JOIN_ASSISTS = declare_metric(
    "join.assists", "counter", "get-top handshake requests served")
DOWNLOADS_SERVED = declare_metric(
    "downloads.served", "counter", "§4.3 peer-list downloads served")
LEVEL_LOWER = declare_metric(
    "level.lower", "counter", "autonomic level lowers (list shrink)")
LEVEL_RAISE = declare_metric(
    "level.raise", "counter", "autonomic level raises (list growth)")
REFRESH_SENT = declare_metric(
    "refresh.sent", "counter", "§4.6 self-refresh events originated")
SWEEP_EXPIRED = declare_metric(
    "sweep.expired", "counter", "pointers expired by the §4.6 sweep")
MCAST_ORIGINATED = declare_metric(
    "mcast.originated", "counter", "multicast trees rooted (top nodes)")
MCAST_RECEIVED = declare_metric(
    "mcast.received", "counter", "multicast messages received (fresh + dup)")
MCAST_DUPLICATES = declare_metric(
    "mcast.duplicates", "counter", "multicast receipts acked as duplicates")
MCAST_REDIRECTS = declare_metric(
    "mcast.redirects", "counter", "§4.2 stale-pointer redirects while relaying")
MCAST_STALE_REMOVED = declare_metric(
    "mcast.stale_removed", "counter", "pointers removed after 3 unacked sends")
MCAST_ACK_TIMEOUTS = declare_metric(
    "mcast.ack_timeouts", "counter", "multicast send attempts that timed out")
MCAST_DEPTH = declare_metric(
    "mcast.depth", "dist", "tree depth at which fresh multicasts arrive")
MCAST_FANOUT = declare_metric(
    "mcast.fanout", "dist", "targets contacted per relay/root forward")
REPORT_SENT = declare_metric(
    "report.sent", "counter", "§4.5 event reports sent toward a top node")
REPORT_FAILED = declare_metric(
    "report.failed", "counter", "reports abandoned after every retry")
REPORT_SERVED = declare_metric(
    "report.served", "counter", "report messages served (top or relay)")
PEERS_SIZE_LEVEL = declare_metric(
    "peers.size.level", "gauge", "peer-list size, sampled per level",
    per_key=True)
NODES_LEVEL = declare_metric(
    "nodes.level", "gauge", "live-node population per level", per_key=True)
TRANSPORT_MSGS = declare_metric(
    "transport.msgs", "counter", "messages sent, per wire kind", per_key=True)
TRANSPORT_BITS = declare_metric(
    "transport.bits", "counter", "bits sent, per wire kind", per_key=True)
OBIT_VERIFICATIONS = declare_metric(
    "obituary.verifications", "counter",
    "verify-before-believe probe chains started (DESIGN §16)")
OBIT_CONFIRMED = declare_metric(
    "obituary.confirmed", "counter",
    "verified obituaries whose subject never answered (believed)")
OBIT_REFUTED = declare_metric(
    "obituary.refuted", "counter",
    "verified obituaries refuted by a live subject's probe ack")
OBIT_QUARANTINE_DROPS = declare_metric(
    "obituary.quarantine_drops", "counter",
    "obituaries dropped unheard because the accuser is quarantined")
QUARANTINE_ADDITIONS = declare_metric(
    "quarantine.additions", "counter",
    "accusers quarantined after quarantine_strikes refuted obituaries")
JOIN_POW_REJECTED = declare_metric(
    "join.pow_rejected", "counter",
    "get-top requests dropped for missing/invalid proof-of-work")
JOIN_POW_COST = declare_metric(
    "join.pow_cost", "dist",
    "modeled seconds a joiner spent grinding its admission token")
JOIN_THROTTLED = declare_metric(
    "join.throttled", "counter",
    "get-top requests dropped by the per-server join-rate throttle")
AUDIT_CHECKS = declare_metric(
    "audit.checks", "counter", "claim audits started (DESIGN §16)")
AUDIT_PASSES = declare_metric(
    "audit.passes", "counter", "claim audits the claimant's list passed")
AUDIT_DEMOTIONS = declare_metric(
    "audit.demotions", "counter",
    "level claims demoted after a failed claim audit")
LIVE_RETRANSMIT_GIVEUP = declare_metric(
    "live.retransmit_giveup", "counter",
    "live requests that exhausted every datagram retransmit and timed out")
DETECT_LATENCY = declare_metric(
    "detect.latency", "dist",
    "seconds from a member's death to a detector noticing it "
    "(baseline tournament instrumentation)")
WALKS_LAUNCHED = declare_metric(
    "walk.launched", "counter",
    "random-walk collection walks started (random-walk baseline)")
WALK_STEPS = declare_metric(
    "walk.steps", "dist",
    "hops taken per collection walk (random-walk baseline)")
PULL_EXCHANGES = declare_metric(
    "pull.exchanges", "counter",
    "anti-entropy pull exchanges completed (push-pull gossip baseline)")
PULL_ENTRIES = declare_metric(
    "pull.entries", "counter",
    "membership entries transferred by pull exchanges (push-pull baseline)")


class Dist:
    """A mergeable moment accumulator for one distribution-valued signal."""

    __slots__ = ("count", "total", "sumsq", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Dist") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.sumsq += other.sumsq
        if self.min is None or (other.min is not None and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None and other.max > self.max):
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        if self.count < 2:
            return 0.0
        var = self.sumsq / self.count - self.mean ** 2
        return math.sqrt(var) if var > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "sumsq": self.sumsq,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "stdev": self.stdev,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "Dist":
        dist = cls()
        dist.count = int(d.get("count", 0))
        dist.total = float(d.get("sum", 0.0))
        dist.sumsq = float(d.get("sumsq", 0.0))
        if dist.count:
            dist.min = float(d.get("min", 0.0))
            dist.max = float(d.get("max", 0.0))
        return dist


class MetricsRegistry:
    """Per-node counters, gauges, and :class:`Dist` accumulators.

    Keys are flat dotted strings (``"mcast.redirects"``,
    ``"peers.level.3"``); the flat namespace keeps snapshots trivially
    mergeable and CSV-exportable.
    """

    __slots__ = ("enabled", "strict", "counters", "gauges", "dists", "sink")

    def __init__(self, enabled: bool = False, strict: bool = False):
        self.enabled = enabled
        #: When set, recording an undeclared name raises — an opt-in
        #: runtime complement to detlint OBS002 (tests and ad-hoc
        #: experiments keep the permissive default).
        self.strict = strict
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.dists: Dict[str, Dist] = {}
        #: Optional streaming subscriber (``repro.obs.stream``), notified
        #: on counter increments.  The check sits after the ``enabled``
        #: early-return, so the disabled hot path stays one ``if``.
        self.sink = None

    def _check(self, name: str) -> None:
        if self.strict and not known_metric(name):
            raise ValueError(
                f"metric {name!r} is not declared in METRIC_CATALOG "
                f"(declare_metric it, or record through a declared "
                f"per-key prefix)"
            )

    def inc(self, name: str, value: float = 1) -> None:
        if not self.enabled:
            return
        self._check(name)
        self.counters[name] = self.counters.get(name, 0) + value
        if self.sink is not None:
            self.sink.on_inc(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self._check(name)
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self._check(name)
        dist = self.dists.get(name)
        if dist is None:
            dist = self.dists[name] = Dist()
        dist.observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-compatible snapshot with deterministic key order."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "dists": {k: self.dists[k].as_dict() for k in sorted(self.dists)},
        }


def aggregate_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-node snapshots into one network-wide snapshot.

    Counters and gauges sum (a summed gauge like ``peers.level.3`` reads
    as the network-wide total, which is what the cost-model comparison
    wants); dists merge exactly.  ``nodes`` counts contributors.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    dists: Dict[str, Dist] = {}
    n = 0
    for snap in snapshots:
        n += 1
        for k, v in snap.get("counters", {}).items():
            counters[k] = counters.get(k, 0) + v
        for k, v in snap.get("gauges", {}).items():
            gauges[k] = gauges.get(k, 0) + v
        for k, d in snap.get("dists", {}).items():
            dist = dists.get(k)
            if dist is None:
                dist = dists[k] = Dist()
            dist.merge(Dist.from_dict(d))
    return {
        "nodes": n,
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "dists": {k: dists[k].as_dict() for k in sorted(dists)},
    }


def flatten_snapshot(snapshot: Dict[str, Any]) -> List[Tuple[str, str, float]]:
    """``(kind, name, value)`` rows for tables/CSV, deterministic order.

    Dists expand into ``name.count`` / ``name.mean`` / ``name.min`` /
    ``name.max`` rows.
    """
    rows: List[Tuple[str, str, float]] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append(("counter", name, value))
    for name, value in snapshot.get("gauges", {}).items():
        rows.append(("gauge", name, value))
    for name, d in snapshot.get("dists", {}).items():
        for stat in ("count", "mean", "min", "max"):
            rows.append(("dist", f"{name}.{stat}", d[stat]))
    return rows
