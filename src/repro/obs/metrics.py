"""Protocol metrics: deterministic counters, gauges, and distributions.

Each node owns a :class:`MetricsRegistry` (reachable as
``ctx.obs.registry``); the instrumentation sites record the signals the
paper's cost model predicts — multicast fan-out and depth, redirect
rate, ack timeouts, probe RTT, join latency, peer-list size per level,
bytes by message kind — and :func:`aggregate_snapshots` folds all node
registries into one network-wide view for comparison against
``repro.core.analytic``.

Design constraints (shared with :mod:`repro.obs.trace`):

* a **disabled** registry turns every ``inc``/``observe`` into a single
  ``if`` — the default for all simulations, keeping the no-op overhead
  within the benchmarked budget;
* everything is exact arithmetic on the recorded values — no sampling,
  no RNG, no wall clock — so snapshots are byte-identical between
  sequential and partitioned runs of the same seed;
* distributions are moment accumulators (count/sum/sumsq/min/max)
  rather than binned histograms: mergeable across nodes without a
  pre-agreed bin layout, and enough to report mean/stdev/extremes.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple


class Dist:
    """A mergeable moment accumulator for one distribution-valued signal."""

    __slots__ = ("count", "total", "sumsq", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Dist") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.sumsq += other.sumsq
        if self.min is None or (other.min is not None and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None and other.max > self.max):
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        if self.count < 2:
            return 0.0
        var = self.sumsq / self.count - self.mean ** 2
        return math.sqrt(var) if var > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "sumsq": self.sumsq,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "stdev": self.stdev,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "Dist":
        dist = cls()
        dist.count = int(d.get("count", 0))
        dist.total = float(d.get("sum", 0.0))
        dist.sumsq = float(d.get("sumsq", 0.0))
        if dist.count:
            dist.min = float(d.get("min", 0.0))
            dist.max = float(d.get("max", 0.0))
        return dist


class MetricsRegistry:
    """Per-node counters, gauges, and :class:`Dist` accumulators.

    Keys are flat dotted strings (``"mcast.redirects"``,
    ``"peers.level.3"``); the flat namespace keeps snapshots trivially
    mergeable and CSV-exportable.
    """

    __slots__ = ("enabled", "counters", "gauges", "dists")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.dists: Dict[str, Dist] = {}

    def inc(self, name: str, value: float = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        dist = self.dists.get(name)
        if dist is None:
            dist = self.dists[name] = Dist()
        dist.observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-compatible snapshot with deterministic key order."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "dists": {k: self.dists[k].as_dict() for k in sorted(self.dists)},
        }


def aggregate_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-node snapshots into one network-wide snapshot.

    Counters and gauges sum (a summed gauge like ``peers.level.3`` reads
    as the network-wide total, which is what the cost-model comparison
    wants); dists merge exactly.  ``nodes`` counts contributors.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    dists: Dict[str, Dist] = {}
    n = 0
    for snap in snapshots:
        n += 1
        for k, v in snap.get("counters", {}).items():
            counters[k] = counters.get(k, 0) + v
        for k, v in snap.get("gauges", {}).items():
            gauges[k] = gauges.get(k, 0) + v
        for k, d in snap.get("dists", {}).items():
            dist = dists.get(k)
            if dist is None:
                dist = dists[k] = Dist()
            dist.merge(Dist.from_dict(d))
    return {
        "nodes": n,
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "dists": {k: dists[k].as_dict() for k in sorted(dists)},
    }


def flatten_snapshot(snapshot: Dict[str, Any]) -> List[Tuple[str, str, float]]:
    """``(kind, name, value)`` rows for tables/CSV, deterministic order.

    Dists expand into ``name.count`` / ``name.mean`` / ``name.min`` /
    ``name.max`` rows.
    """
    rows: List[Tuple[str, str, float]] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append(("counter", name, value))
    for name, value in snapshot.get("gauges", {}).items():
        rows.append(("gauge", name, value))
    for name, d in snapshot.get("dists", {}).items():
        for stat in ("count", "mean", "min", "max"):
            rows.append(("dist", f"{name}.{stat}", d[stat]))
    return rows
