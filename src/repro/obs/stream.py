"""Streaming telemetry: a subscription bus over the span/metric emit
paths plus windowed incremental aggregation.

The post-hoc pipeline (``repro.obs.analyze`` → ``repro.obs.health`` →
``repro.obs.report``) answers "what happened" after a run ends.  This
module answers "what is the network doing" *while* it runs, without
giving up the determinism contract the rest of ``repro.obs`` is built
on:

* :class:`TelemetryBus` subscribes to the existing emit paths — one
  :class:`NodeTap` per node, installed in the ``sink`` slot of that
  node's :class:`~repro.obs.trace.NodeObs` and
  :class:`~repro.obs.metrics.MetricsRegistry`.  A tap only *observes*
  span ends and counter increments; span buffers and registries are
  untouched, so merged exports stay byte-identical with or without a
  bus attached.  With no subscriber the hooks are a ``sink is None``
  check behind the existing ``enabled`` guard — the disabled hot path
  stays one ``if`` (see ``benchmarks/bench_obs_overhead.py``).
* :class:`StreamWindower` drives ``net.run`` in fixed sim-clock window
  strides and closes one :class:`frame <WindowAggregator>` per window.
  Events are bucketed by the stride that published them; both engines
  execute events at exactly ``t == boundary`` inside the stride (the
  parallel engine settles boundary deliveries at the end of ``run``),
  so sequential and ``parallel=N`` runs of the same seed assign every
  event to the same window and the snapshot JSONL is byte-identical.
* :class:`WindowAggregator` folds drained taps in sorted node order
  (ints summed, floats folded in a fixed order), derives per-window
  rates, and feeds them through an
  :class:`~repro.obs.health.EwmaHealthMonitor` so SLO breaches surface
  as events in the frames; a final frame evaluates the cumulative
  signals against the full :class:`~repro.obs.health.HealthSpec`.

Frames serialize as JSONL — a ``{"schema": "repro.telemetry"}`` header
followed by one compact sorted-key object per window — written by
:class:`SnapshotWriter` (the ``--snapshot-jsonl`` sink), loaded by
:func:`load_frames` (skip-and-count tolerant of truncated tails, like
the span loader), and merged across live node processes by
:func:`merge_node_frames` with the same sorted-address ordering rules
as the swarm span merge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Hashable, IO, List, Optional, Sequence, Tuple

from repro.obs.analyze import SchemaError
from repro.obs.export import prepare_output_path
from repro.obs.health import (
    EwmaHealthMonitor,
    HealthSpec,
    evaluate,
    metrics_signals,
)
from repro.obs.trace import NodeObs, Span

TELEMETRY_SCHEMA = "repro.telemetry"
TELEMETRY_SCHEMA_VERSION = 1

#: Span names folded into the multicast tree statistics.
_MCAST_SPAN_NAMES = ("mcast.root", "mcast.hop")
_PROBE_SPAN_NAMES = ("probe", "probe.verify")


def telemetry_header_line() -> str:
    """The schema header line of a telemetry frame JSONL file."""
    return json.dumps(
        {"schema": TELEMETRY_SCHEMA, "schema_version": TELEMETRY_SCHEMA_VERSION},
        sort_keys=True,
        separators=(",", ":"),
    )


def frame_line(frame: Dict[str, Any]) -> str:
    """One frame as a compact, sorted-key JSON line (deterministic)."""
    return json.dumps(frame, sort_keys=True, separators=(",", ":"))


# -- the bus ----------------------------------------------------------------


class NodeTap:
    """Per-node subscriber buffer.

    Installed in the ``sink`` slot of one node's :class:`NodeObs` and
    :class:`MetricsRegistry`; only ever written from that node's own
    event queue (race-free under threaded epochs, same ownership
    argument as the span buffers).  Drained between simulation strides
    from the coordinating thread.
    """

    __slots__ = ("node", "spans", "counts")

    def __init__(self, node: Hashable):
        self.node = node
        self.spans: List[Span] = []
        self.counts: Dict[str, float] = {}

    # Emit-path callbacks (hot when a bus is attached; see module doc).

    def on_span_end(self, span: Span) -> None:
        self.spans.append(span)

    def on_inc(self, name: str, value: float) -> None:
        self.counts[name] = self.counts.get(name, 0) + value

    def drain(self) -> Tuple[List[Span], Dict[str, float]]:
        """Take and reset the buffered spans and counter deltas."""
        spans, self.spans = self.spans, []
        counts, self.counts = self.counts, {}
        return spans, counts


class TelemetryBus:
    """One :class:`NodeTap` per node view of an
    :class:`~repro.obs.trace.Observability`.

    Attach with :meth:`repro.obs.trace.Observability.attach_bus`; views
    created afterwards are tapped on creation.
    """

    def __init__(self) -> None:
        self.taps: Dict[Hashable, NodeTap] = {}

    def attach_node(self, obs: NodeObs) -> None:
        tap = self.taps.get(obs.node)
        if tap is None:
            tap = self.taps[obs.node] = NodeTap(obs.node)
        obs.sink = tap
        obs.registry.sink = tap

    def drain(self) -> List[Tuple[Hashable, List[Span], Dict[str, float]]]:
        """Drain every tap in sorted node order (the export order of
        :meth:`Observability.spans` — determinism depends on it)."""
        out = []
        for key in sorted(self.taps, key=str):
            spans, counts = self.taps[key].drain()
            out.append((key, spans, counts))
        return out


# -- window folding ---------------------------------------------------------


class WindowBucket:
    """The integer/float facts of one window, foldable across nodes.

    Built either from drained :class:`NodeTap` buffers (sim) or from
    per-node frame dicts (live merge) — both fold in sorted node order.
    """

    __slots__ = (
        "taps", "spans", "span_counts", "status_counts", "counters",
        "mcast_spans", "mcast_redirects", "mcast_max_depth", "mcast_died",
        "join_ok", "join_failed", "probes", "probe_timeouts", "obituaries",
    )

    def __init__(self) -> None:
        self.taps = 0
        self.spans = 0
        self.span_counts: Dict[str, int] = {}
        self.status_counts: Dict[str, int] = {}
        self.counters: Dict[str, float] = {}
        self.mcast_spans = 0
        self.mcast_redirects = 0
        self.mcast_max_depth = 0
        self.mcast_died = 0
        self.join_ok = 0
        self.join_failed = 0
        self.probes = 0
        self.probe_timeouts = 0
        self.obituaries = 0

    def add_span(self, span: Span) -> None:
        self.spans += 1
        self.span_counts[span.name] = self.span_counts.get(span.name, 0) + 1
        self.status_counts[span.status] = self.status_counts.get(span.status, 0) + 1
        name = span.name
        if name in _MCAST_SPAN_NAMES:
            self.mcast_spans += 1
            depth = span.attrs.get("depth") if span.attrs else None
            if isinstance(depth, int) and depth > self.mcast_max_depth:
                self.mcast_max_depth = depth
            if span.status == "died":
                self.mcast_died += 1
        elif name == "mcast.redirect":
            self.mcast_redirects += 1
        elif name == "join":
            if span.status == "ok":
                self.join_ok += 1
            else:
                self.join_failed += 1
        elif name in _PROBE_SPAN_NAMES:
            self.probes += 1
            if span.status == "timeout":
                self.probe_timeouts += 1
        elif name == "obituary":
            self.obituaries += 1

    def add_node(self, spans: Sequence[Span], counts: Dict[str, float]) -> None:
        """Fold one drained tap (call in sorted node order)."""
        if spans or counts:
            self.taps += 1
        for span in spans:
            self.add_span(span)
        for name in sorted(counts):
            self.counters[name] = self.counters.get(name, 0) + counts[name]

    def add_frame(self, frame: Dict[str, Any]) -> None:
        """Fold one per-node frame dict (the live merge path; call in
        sorted node-address order)."""
        self.taps += int(frame.get("taps", 0))
        self.spans += int(frame.get("spans", 0))
        for field, into in (
            ("span_counts", self.span_counts),
            ("status_counts", self.status_counts),
        ):
            for name, count in sorted(frame.get(field, {}).items()):
                into[name] = into.get(name, 0) + int(count)
        for name, value in sorted(frame.get("counters", {}).items()):
            self.counters[name] = self.counters.get(name, 0) + value
        mcast = frame.get("mcast", {})
        self.mcast_spans += int(mcast.get("spans", 0))
        self.mcast_redirects += int(mcast.get("redirects", 0))
        self.mcast_max_depth = max(
            self.mcast_max_depth, int(mcast.get("max_depth", 0))
        )
        self.mcast_died += int(mcast.get("died", 0))
        join = frame.get("join", {})
        self.join_ok += int(join.get("ok", 0))
        self.join_failed += int(join.get("failed", 0))
        probe = frame.get("probe", {})
        self.probes += int(probe.get("count", 0))
        self.probe_timeouts += int(probe.get("timeouts", 0))
        self.obituaries += int(frame.get("obituaries", 0))

    def fold_into(self, other: "WindowBucket") -> None:
        """Accumulate this window into a cumulative bucket."""
        other.spans += self.spans
        for name, count in sorted(self.span_counts.items()):
            other.span_counts[name] = other.span_counts.get(name, 0) + count
        for name, count in sorted(self.status_counts.items()):
            other.status_counts[name] = other.status_counts.get(name, 0) + count
        for name, value in sorted(self.counters.items()):
            other.counters[name] = other.counters.get(name, 0) + value
        other.mcast_spans += self.mcast_spans
        other.mcast_redirects += self.mcast_redirects
        other.mcast_max_depth = max(other.mcast_max_depth, self.mcast_max_depth)
        other.mcast_died += self.mcast_died
        other.join_ok += self.join_ok
        other.join_failed += self.join_failed
        other.probes += self.probes
        other.probe_timeouts += self.probe_timeouts
        other.obituaries += self.obituaries

    def rate_signals(self) -> Dict[str, float]:
        """Window-derived health signals.  A rate is only emitted when
        its denominator is non-zero — :func:`repro.obs.health.evaluate`
        skips SLOs whose signal is absent, so an idle window is not
        judged on activity it did not have."""
        signals: Dict[str, float] = {}
        joins = self.join_ok + self.join_failed
        if joins:
            signals["join.failure_rate"] = self.join_failed / joins
        if self.probes:
            signals["probe.timeout_rate"] = self.probe_timeouts / self.probes
        if self.mcast_spans:
            signals["mcast.redirect_rate"] = self.mcast_redirects / self.mcast_spans
            signals["mcast.max_depth"] = float(self.mcast_max_depth)
            signals["mcast.death_rate"] = self.mcast_died / self.mcast_spans
        return signals


# -- the aggregator ---------------------------------------------------------


class WindowAggregator:
    """Fold window buckets into frames; keep cumulative totals and run
    the EWMA band monitor over the per-window signals.

    The frame schema is stable across every producer (sim windower,
    live node sidecar, live merge): ``window``/``t0``/``t1``/``final``,
    the raw bucket facts, derived ``signals``, EWMA ``breaches``, the
    optional oracle ``state`` sample, and a per-frame ``healthy`` flag
    (no breach this window; on the final frame, the full-spec verdict).
    """

    def __init__(
        self,
        spec: Optional[HealthSpec] = None,
        alpha: float = 0.3,
        warmup: int = 2,
    ):
        self.spec = spec
        self.monitor = (
            EwmaHealthMonitor(spec, alpha=alpha, warmup=warmup)
            if spec is not None
            else None
        )
        self.cumulative = WindowBucket()
        self.windows_closed = 0

    def _frame(
        self,
        index: int,
        t0: float,
        t1: float,
        bucket: WindowBucket,
        signals: Dict[str, float],
        breaches: List[Dict[str, Any]],
        verdicts: List[Dict[str, Any]],
        healthy: bool,
        final: bool,
        state: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        return {
            "window": index,
            "t0": t0,
            "t1": t1,
            "final": final,
            "taps": bucket.taps,
            "spans": bucket.spans,
            "span_counts": {k: bucket.span_counts[k]
                            for k in sorted(bucket.span_counts)},
            "status_counts": {k: bucket.status_counts[k]
                              for k in sorted(bucket.status_counts)},
            "counters": {k: bucket.counters[k]
                         for k in sorted(bucket.counters)},
            "mcast": {
                "spans": bucket.mcast_spans,
                "redirects": bucket.mcast_redirects,
                "max_depth": bucket.mcast_max_depth,
                "died": bucket.mcast_died,
            },
            "join": {"ok": bucket.join_ok, "failed": bucket.join_failed},
            "probe": {"count": bucket.probes, "timeouts": bucket.probe_timeouts},
            "obituaries": bucket.obituaries,
            "signals": {k: signals[k] for k in sorted(signals)},
            "breaches": breaches,
            "verdicts": verdicts,
            "healthy": healthy,
            "state": state,
        }

    def close_window(
        self,
        index: int,
        t0: float,
        t1: float,
        bucket: WindowBucket,
        state: Optional[Dict[str, Any]] = None,
        extra_signals: Optional[Dict[str, float]] = None,
    ) -> Dict[str, Any]:
        """Close one window: derive its signals, run the EWMA monitor,
        fold the bucket into the cumulative totals, return the frame."""
        signals = bucket.rate_signals()
        if extra_signals:
            signals.update(extra_signals)
        breaches: List[Dict[str, Any]] = []
        if self.monitor is not None:
            for verdict in self.monitor.observe(signals, now=t1):
                if not verdict.ok:
                    breaches.append(verdict.to_dict())
        bucket.fold_into(self.cumulative)
        self.windows_closed += 1
        return self._frame(
            index, t0, t1, bucket, signals, breaches,
            verdicts=[], healthy=not breaches, final=False, state=state,
        )

    def final_frame(
        self,
        index: int,
        t0: float,
        t1: float,
        bucket: Optional[WindowBucket] = None,
        state: Optional[Dict[str, Any]] = None,
        extra_signals: Optional[Dict[str, float]] = None,
    ) -> Dict[str, Any]:
        """The closing frame: any leftover partial-window bucket folds
        into the cumulative totals, whose signals are evaluated against
        the *full* spec (plain :func:`evaluate`, no EWMA smoothing) —
        the same judgment ``repro obs health`` renders post hoc."""
        if bucket is not None:
            bucket.fold_into(self.cumulative)
        signals = self.cumulative.rate_signals()
        if extra_signals:
            signals.update(extra_signals)
        verdicts: List[Dict[str, Any]] = []
        breaches: List[Dict[str, Any]] = []
        healthy = True
        if self.spec is not None:
            for verdict in evaluate(self.spec, signals, now=t1):
                verdicts.append(verdict.to_dict())
                if not verdict.ok:
                    breaches.append(verdict.to_dict())
                    healthy = False
        return self._frame(
            index, t0, t1, self.cumulative, signals, breaches,
            verdicts=verdicts, healthy=healthy, final=True, state=state,
        )


# -- sinks ------------------------------------------------------------------


class SnapshotWriter:
    """The ``--snapshot-jsonl`` sink: schema header plus one compact
    frame line per window, flushed per frame so a dashboard (or a test)
    can tail the file while the producer is still running."""

    def __init__(self, path: str):
        self.path = path
        prepare_output_path(path, "telemetry frame JSONL")
        self._fh: Optional[IO[str]] = open(path, "w")
        self._fh.write(telemetry_header_line() + "\n")
        self._fh.flush()

    def write(self, frame: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"snapshot writer for {self.path} is closed")
        self._fh.write(frame_line(frame) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# -- loading + merging ------------------------------------------------------


def load_frames(lines: Sequence[str]) -> Tuple[List[Dict[str, Any]], int, int]:
    """Parse telemetry frame lines into ``(frames, schema_version,
    skipped)``.

    Malformed or truncated lines — a node killed mid-write leaves a
    partial tail — are skipped and counted, mirroring the span loader's
    contract.  A header from a *newer* schema version still raises
    :class:`SchemaError`: silently misreading frames from a future
    writer is worse than refusing."""
    frames: List[Dict[str, Any]] = []
    version = TELEMETRY_SCHEMA_VERSION
    skipped = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if not isinstance(obj, dict):
            skipped += 1
            continue
        if obj.get("schema") == TELEMETRY_SCHEMA and "window" not in obj:
            version = int(obj.get("schema_version", 0))
            if version > TELEMETRY_SCHEMA_VERSION:
                raise SchemaError(
                    f"telemetry schema_version {version} is newer than "
                    f"supported version {TELEMETRY_SCHEMA_VERSION}"
                )
            continue
        if "window" not in obj or "t1" not in obj:
            skipped += 1
            continue
        frames.append(obj)
    return frames, version, skipped


def load_frames_file(path: str) -> Tuple[List[Dict[str, Any]], int, int]:
    with open(path) as fh:
        return load_frames(fh.readlines())


def merge_node_frames(
    per_node: Sequence[Tuple[str, Sequence[Dict[str, Any]]]],
    spec: Optional[HealthSpec] = None,
    final_t1: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Merge per-node frame streams (the live backend) into one merged
    stream plus a cumulative final frame.

    Ordering rules match the swarm span merge: nodes fold in sorted
    address order within each window index, windows emit in index
    order.  The EWMA monitor then runs over the merged window sequence,
    so breach events reflect the *network*, not any single node."""
    ordered = sorted(per_node, key=lambda pair: str(pair[0]))
    by_window: Dict[int, List[Tuple[str, Dict[str, Any]]]] = {}
    for address, frames in ordered:
        for frame in frames:
            if frame.get("final"):
                continue
            by_window.setdefault(int(frame["window"]), []).append((address, frame))
    agg = WindowAggregator(spec=spec)
    merged: List[Dict[str, Any]] = []
    last_t1 = 0.0
    for index in sorted(by_window):
        bucket = WindowBucket()
        t0s: List[float] = []
        t1s: List[float] = []
        for _, frame in by_window[index]:
            bucket.add_frame(frame)
            t0s.append(float(frame["t0"]))
            t1s.append(float(frame["t1"]))
        t0, t1 = min(t0s), max(t1s)
        last_t1 = max(last_t1, t1)
        merged.append(agg.close_window(index, t0, t1, bucket))
    final_index = (max(by_window) + 1) if by_window else 0
    merged.append(
        agg.final_frame(
            final_index, last_t1,
            last_t1 if final_t1 is None else final_t1,
        )
    )
    return merged


# -- the sim-side windower --------------------------------------------------


class StreamWindower:
    """Drive a :class:`~repro.core.protocol.PeerWindowNetwork` in fixed
    window strides and emit one frame per window.

    Call :meth:`run` wherever the un-streamed code called
    ``net.run(until=...)`` — the window grid stays anchored at the
    construction-time sim clock regardless of the caller's stride
    pattern, so a given seed produces the same frames no matter how the
    driver slices its ``run`` calls.  Call :meth:`finish` once at the
    end of the run to flush the final cumulative frame and close sinks.
    """

    def __init__(
        self,
        net: Any,
        window: float = 15.0,
        spec: Optional[HealthSpec] = None,
        sinks: Sequence[Any] = (),
        renderer: Optional[Any] = None,
        alpha: float = 0.3,
        warmup: int = 2,
        sample_state: bool = True,
    ):
        if window <= 0:
            raise ValueError("stream window must be > 0")
        if not net.obs.enabled:
            raise ValueError(
                "streaming telemetry needs observability=True on the network"
            )
        self.net = net
        self.window = float(window)
        self.bus = TelemetryBus()
        net.obs.attach_bus(self.bus)
        self.agg = WindowAggregator(spec=spec, alpha=alpha, warmup=warmup)
        self.sinks = list(sinks)
        self.renderer = renderer
        self.sample_state = sample_state
        self.origin = float(net.now)
        self.index = 0
        self.frames_emitted = 0
        self._finished = False

    def _boundary(self, index: int) -> float:
        return self.origin + (index + 1) * self.window

    def run(self, until: float) -> float:
        """Advance the network to ``until``, closing every window whose
        boundary falls within the stride."""
        until = float(until)
        while self._boundary(self.index) <= until:
            boundary = self._boundary(self.index)
            self.net.run(until=boundary)
            self._close(boundary)
        if until > self.net.now:
            self.net.run(until=until)
        return float(self.net.now)

    def finish(self) -> Dict[str, Any]:
        """Emit the final cumulative frame and close every sink."""
        if self._finished:
            raise ValueError("stream windower already finished")
        self._finished = True
        t0 = self.origin + self.index * self.window
        frame = self.agg.final_frame(
            self.index, t0, float(self.net.now),
            bucket=self._bucket(),
            state=self._state(),
            extra_signals=self._extra_signals(),
        )
        self._emit(frame)
        for sink in self.sinks:
            sink.close()
        return frame

    # -- internals ---------------------------------------------------------

    def _bucket(self) -> WindowBucket:
        bucket = WindowBucket()
        for _, spans, counts in self.bus.drain():
            bucket.add_node(spans, counts)
        return bucket

    def _state(self) -> Optional[Dict[str, Any]]:
        if not self.sample_state:
            return None
        net = self.net
        hist = net.level_histogram()
        return {
            "live_nodes": len(net.live_nodes()),
            "levels": {str(k): int(v) for k, v in hist.items()},
            "mean_error_rate": float(net.mean_error_rate()),
        }

    def _extra_signals(self) -> Dict[str, float]:
        """Cumulative snapshot-derived signals sampled at the stride
        boundary — ack-retry rate, bandwidth model ratio, and the
        oracle peer-list error rate come from the registry snapshot and
        transport counters, which the bus cannot see incrementally."""
        net = self.net
        signals = metrics_signals(net.metrics_snapshot(), net.config)
        signals["peerlist.error_rate"] = float(net.mean_error_rate())
        return signals

    def _close(self, boundary: float) -> None:
        t0 = self.origin + self.index * self.window
        frame = self.agg.close_window(
            self.index, t0, boundary, self._bucket(),
            state=self._state(),
            extra_signals=self._extra_signals(),
        )
        self._emit(frame)
        self.index += 1

    def _emit(self, frame: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.write(frame)
        if self.renderer is not None:
            self.renderer.render(frame)
        self.frames_emitted += 1


@dataclass
class StreamConfig:
    """Declarative streaming options carried from CLI flags into run
    harnesses (:class:`repro.chaos.runner.ChaosRunner`, ``repro obs
    run``); :meth:`build` wires the windower once the network exists."""

    window: float = 15.0
    spec: Optional[HealthSpec] = None
    snapshot_path: Optional[str] = None
    render: bool = False
    sample_state: bool = True

    def build(self, net: Any) -> StreamWindower:
        sinks: List[Any] = []
        if self.snapshot_path:
            sinks.append(SnapshotWriter(self.snapshot_path))
        renderer = None
        if self.render:
            from repro.obs.dashboard import TerminalDashboard

            renderer = TerminalDashboard()
        return StreamWindower(
            net,
            window=self.window,
            spec=self.spec,
            sinks=sinks,
            renderer=renderer,
            sample_state=self.sample_state,
        )
