"""Causal tracing: deterministic, sim-clock-timestamped span trees.

Every protocol operation — a join handshake, a level shift, a multicast
dissemination, a failure probe sequence and its obituary, a §4.6 refresh
— opens a :class:`Span`; cross-node causality rides a :class:`SpanRef`
in :attr:`repro.net.message.Message.trace`, so a multicast's full tree
of hops, redirects, and obituaries reconstructs as one span tree keyed
by ``trace_id``.

Determinism is the design constraint (sequential and partitioned runs of
the same seed must emit byte-identical span logs):

* span ids are ``"{node}.{n}"`` where ``n`` is a per-node counter — each
  node's event order is preserved by partitioning, so the ids match in
  every execution mode;
* timestamps are **simulated** seconds, never wall clock;
* spans are buffered per node (one :class:`NodeObs` per node, touched
  only by the node's own logical process — race-free under threaded
  epochs) and merged in sorted node order at export time;
* tracing draws nothing from any RNG and sends no extra messages, so an
  enabled tracer cannot perturb the protocol it observes.

With ``enabled=False`` (the default everywhere) every hook is a single
attribute check; see ``benchmarks/bench_obs_overhead.py`` for the
measured cost.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, NamedTuple, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry


class SpanRef(NamedTuple):
    """The cross-node trace context carried in ``Message.trace``.

    ``depth`` is operation-specific (multicast tree depth for ``mcast``
    hops, 0 elsewhere); it rides here because the receiver cannot
    reconstruct its own depth from a message alone.
    """

    trace_id: str
    span_id: str
    depth: int = 0


class Span:
    """One timed operation at one node.

    ``start``/``end`` are simulated seconds; ``end`` is ``None`` while
    the operation is in flight (and stays ``None`` if the run stops
    first).  ``attrs`` are small JSON-compatible scalars.
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "node",
        "start", "end", "status", "attrs",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        node: Hashable,
        start: float,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def ref(self, depth: int = 0) -> SpanRef:
        """The context to hand a child (same trace, this span as parent)."""
        return SpanRef(self.trace_id, self.span_id, depth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name} {self.span_id} trace={self.trace_id} "
            f"t={self.start:.3f}..{self.end if self.end is not None else '?'}>"
        )


ParentLike = Union[SpanRef, Span, None]


def _parent_ids(parent: ParentLike) -> Tuple[Optional[str], Optional[str]]:
    """(trace_id, span_id) of a parent given as Span, SpanRef, or None."""
    if parent is None:
        return None, None
    if isinstance(parent, Span):
        return parent.trace_id, parent.span_id
    return parent.trace_id, parent.span_id


class NodeObs:
    """One node's observability handle: tracer buffer + metrics registry.

    All instrumentation sites hold a reference and guard on
    :attr:`enabled` — a disabled handle costs one attribute read per
    potential span.  The handle is owned by exactly one node and only
    ever touched from that node's event queue.
    """

    __slots__ = ("enabled", "node", "spans", "registry", "sink", "_n", "_open")

    def __init__(
        self,
        node: Hashable,
        enabled: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.enabled = enabled
        self.node = node
        self.spans: List[Span] = []
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=enabled)
        )
        #: Optional streaming subscriber (``repro.obs.stream``), notified
        #: on span end.  ``None`` by default; the check sits behind the
        #: ``enabled`` guard at every call site, so the disabled hot path
        #: never sees it.
        self.sink = None
        self._n = 0
        #: In-flight spans by span_id (the invariant monitor reads this
        #: to attach live trace ids to violation reports).
        self._open: Dict[str, Span] = {}

    # -- span lifecycle ----------------------------------------------------

    def start(
        self,
        name: str,
        t: float,
        parent: ParentLike = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.  With no parent the span roots a fresh trace
        whose id equals the span id."""
        self._n += 1
        span_id = f"{self.node}.{self._n}"
        trace_id, parent_id = _parent_ids(parent)
        if trace_id is None:
            trace_id = span_id
        span = Span(trace_id, span_id, parent_id, name, self.node, t, attrs or None)
        self.spans.append(span)
        self._open[span_id] = span
        return span

    def end(self, span: Span, t: float, status: str = "ok") -> None:
        span.end = t
        span.status = status
        self._open.pop(span.span_id, None)
        if self.sink is not None:
            self.sink.on_span_end(span)

    def instant(
        self,
        name: str,
        t: float,
        parent: ParentLike = None,
        **attrs: Any,
    ) -> Span:
        """A zero-duration span (a point event that still needs a place
        in the causal tree — e.g. a redirect or an obituary)."""
        span = self.start(name, t, parent, **attrs)
        self.end(span, t)
        return span

    # -- introspection ----------------------------------------------------

    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def open_traces(self) -> List[str]:
        """Distinct trace ids with an in-flight span at this node, in
        span-creation order (deterministic)."""
        seen: Dict[str, None] = {}
        for span in self._open.values():
            seen.setdefault(span.trace_id, None)
        return list(seen)


class Observability:
    """The network-wide observability root: one :class:`NodeObs` per
    node, created through :meth:`view` as nodes are constructed.

    Views are created only between simulation runs (node construction
    happens outside ``run()`` in partitioned mode), so the views dict is
    never written from LP threads.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._views: Dict[Hashable, NodeObs] = {}
        #: Attached telemetry bus (``repro.obs.stream.TelemetryBus``) or
        #: ``None``.  Set through :meth:`attach_bus`; new views created
        #: while a bus is attached are tapped on creation.
        self.bus = None

    def view(self, node: Hashable) -> NodeObs:
        obs = self._views.get(node)
        if obs is None:
            obs = self._views[node] = NodeObs(node, enabled=self.enabled)
            if self.bus is not None:
                self.bus.attach_node(obs)
        return obs

    def attach_bus(self, bus) -> None:
        """Subscribe ``bus`` to every current and future node view.  The
        bus only *observes* span ends and counter increments — span
        buffers and registries are untouched, so merged exports stay
        byte-identical with or without a bus attached."""
        self.bus = bus
        for key in sorted(self._views, key=str):
            bus.attach_node(self._views[key])

    def detach_bus(self) -> None:
        """Remove the attached bus and clear every per-view sink."""
        self.bus = None
        for view in self._views.values():
            view.sink = None
            view.registry.sink = None

    def views(self) -> Dict[Hashable, NodeObs]:
        return self._views

    # -- merged exports ----------------------------------------------------

    def _sorted_views(self) -> List[NodeObs]:
        return [self._views[k] for k in sorted(self._views, key=str)]

    def spans(self) -> List[Span]:
        """Every span from every node, deterministically ordered:
        by start time, ties broken by (sorted node, creation order)."""
        merged: List[Span] = []
        for view in self._sorted_views():
            merged.extend(view.spans)
        merged.sort(key=lambda s: s.start)  # stable: preserves node order
        return merged

    def traces(self) -> Dict[str, List[Span]]:
        """Spans grouped by trace id (each group in global span order)."""
        groups: Dict[str, List[Span]] = {}
        for span in self.spans():
            groups.setdefault(span.trace_id, []).append(span)
        return groups

    def open_traces(self, node: Hashable) -> List[str]:
        view = self._views.get(node)
        return view.open_traces() if view is not None else []

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Aggregate every node registry into one network-wide snapshot
        (see :func:`repro.obs.metrics.aggregate_snapshots`)."""
        from repro.obs.metrics import aggregate_snapshots

        return aggregate_snapshots(
            view.registry.snapshot() for view in self._sorted_views()
        )
