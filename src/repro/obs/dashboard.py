"""Terminal rendering of telemetry frames (``repro watch``).

The renderer is deliberately dumb: :func:`render_frame` is a pure
function from one frame dict to a text block, so tests diff strings and
the dashboard works identically whether frames arrive live from a
:class:`~repro.obs.stream.StreamWindower`, are tailed out of a
``--snapshot-jsonl`` file mid-run, or are replayed after the fact.
On a TTY the :class:`TerminalDashboard` repaints in place with plain
ANSI control sequences (no curses dependency); redirected output gets
one block per frame, newline-separated.

Nothing here reads a wall clock: :func:`watch_file` paces its tail loop
with ``time.sleep`` only, and rendering is driven entirely by the
frames' sim-clock timestamps, so the watcher cannot perturb or
misorder what it shows.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO

#: Width of the level-histogram bars.
_BAR_WIDTH = 30
_RULE = "-" * 72


def _bar(count: int, peak: int) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1, round(_BAR_WIDTH * count / peak)) if count else ""


def _fmt_rate(value: float) -> str:
    return f"{value:.4f}" if isinstance(value, float) else str(value)


def render_frame(frame: Dict[str, Any]) -> str:
    """One frame as a text block (pure; deterministic for a given frame)."""
    lines: List[str] = []
    kind = "final" if frame.get("final") else f"window {frame.get('window')}"
    lines.append(
        f"== PeerWindow telemetry · {kind} · "
        f"t {frame.get('t0', 0):.1f}..{frame.get('t1', 0):.1f} s =="
    )
    state = frame.get("state")
    if state:
        lines.append(
            f"nodes: {state.get('live_nodes', '?')} live · "
            f"peer-list error rate {state.get('mean_error_rate', 0):.4f}"
        )
        levels = state.get("levels") or {}
        if levels:
            counts = {int(k): int(v) for k, v in levels.items()}
            peak = max(counts.values())
            for level in sorted(counts):
                count = counts[level]
                lines.append(
                    f"  level {level:>2} |{_bar(count, peak):<{_BAR_WIDTH}}| {count}"
                )
    mcast = frame.get("mcast", {})
    join = frame.get("join", {})
    probe = frame.get("probe", {})
    lines.append(
        f"spans: {frame.get('spans', 0)} · mcast {mcast.get('spans', 0)} "
        f"(redirects {mcast.get('redirects', 0)}, depth<={mcast.get('max_depth', 0)}, "
        f"died {mcast.get('died', 0)}) · join {join.get('ok', 0)}/"
        f"{join.get('ok', 0) + join.get('failed', 0)} ok · "
        f"probe {probe.get('count', 0)} ({probe.get('timeouts', 0)} timeouts) · "
        f"obituaries {frame.get('obituaries', 0)}"
    )
    signals = frame.get("signals", {})
    if signals:
        parts = [f"{name}={_fmt_rate(signals[name])}" for name in sorted(signals)]
        lines.append("signals: " + " ".join(parts))
    breaches = frame.get("breaches", [])
    if breaches:
        for breach in breaches:
            lo = breach.get("lo")
            hi = breach.get("hi")
            band = (
                f"[{'-inf' if lo is None else format(lo, 'g')}, "
                f"{'inf' if hi is None else format(hi, 'g')}]"
            )
            lines.append(
                f"BREACH {breach.get('slo')}={breach.get('value', 0):.6g} band={band}"
            )
    else:
        lines.append("breaches: none")
    if frame.get("final"):
        lines.append(
            "verdict: HEALTHY" if frame.get("healthy") else "verdict: UNHEALTHY"
        )
    lines.append(_RULE)
    return "\n".join(lines)


def _span_label(span, root: bool = False) -> str:
    """Compact one-line label for a span in a tree view."""
    depth = span.attrs.get("depth") if span.attrs else None
    status = span.status if span.status is not None else "open"
    if root:
        kind = span.attrs.get("kind", "?") if span.attrs else "?"
        subject = span.attrs.get("subject", "?") if span.attrs else "?"
        return (
            f"{span.name} {kind} subject={subject} "
            f"root=n{span.node} t={span.start:.2f}s"
        )
    tag = f"n{span.node}"
    if depth is not None:
        tag += f" d{depth}"
    return f"{tag} {status}"


def render_span_tree(root, children_of, max_nodes: int = 48) -> str:
    """ASCII shape of one span tree (pure; deterministic).

    ``children_of`` maps span_id -> ordered child spans (the
    :class:`~repro.obs.analyze.TraceForest` ordering: by start time,
    ties by span id).  Rendering truncates at ``max_nodes`` spans with
    an explicit marker, so giant trees stay watchable.
    """
    lines = [_span_label(root, root=True)]
    budget = [max_nodes]

    def walk(span, prefix: str) -> None:
        kids = children_of(span.span_id)
        for i, kid in enumerate(kids):
            last = i == len(kids) - 1
            if budget[0] <= 0:
                lines.append(prefix + "└─ …")
                return
            budget[0] -= 1
            connector = "└─ " if last else "├─ "
            lines.append(prefix + connector + _span_label(kid))
            walk(kid, prefix + ("   " if last else "│  "))

    walk(root, "")
    return "\n".join(lines)


def render_mcast_trees(
    spans, limit: int = 3, max_nodes: int = 48
) -> str:
    """Reconstruct multicast trees from a span list and render the
    ``limit`` largest as ASCII shapes (ties broken by root span id, so
    the pick is deterministic)."""
    from repro.obs.analyze import TraceForest, analyze_spans

    forest = TraceForest(spans)
    report = analyze_spans(spans)
    if not report.trees:
        return "no multicast trees in span stream"
    ranked = sorted(
        report.trees,
        key=lambda t: (-len(t.members), t.root.span_id),
    )[:limit]
    children_of = lambda span_id: forest.children.get(span_id, [])  # noqa: E731
    blocks = []
    for tree in ranked:
        header = (
            f"tree {tree.kind} · members={len(tree.members)} "
            f"delivered={tree.delivered} undelivered={tree.undelivered} "
            f"depth={tree.depth}"
        )
        blocks.append(
            header + "\n" + render_span_tree(
                tree.root, children_of, max_nodes=max_nodes
            )
        )
    return "\n\n".join(blocks)


#: Columns of the side-by-side comparison table: (header, getter).
_COMPARE_COLS = (
    ("nodes", lambda f: (f.get("state") or {}).get("live_nodes", "?")),
    ("error", lambda f: _fmt_rate(
        (f.get("state") or {}).get("mean_error_rate", 0.0))),
    ("spans", lambda f: f.get("spans", 0)),
    ("mcast", lambda f: f.get("mcast", {}).get("spans", 0)),
    ("join", lambda f: f.get("join", {}).get("ok", 0)),
    ("probe_to", lambda f: f.get("probe", {}).get("timeouts", 0)),
    ("breach", lambda f: len(f.get("breaches", ()))),
    (
        "verdict",
        lambda f: (
            ("HEALTHY" if f.get("healthy") else "UNHEALTHY")
            if f.get("final")
            else ("ok" if f.get("healthy", True) else "BREACH")
        ),
    ),
)


def render_comparison(
    frames_by_name: Dict[str, Dict[str, Any]],
    t: Optional[float] = None,
    seed: Optional[int] = None,
) -> str:
    """One aligned row per contestant from that contestant's freshest
    frame — the side-by-side view ``repro compare --watch`` repaints."""
    names = sorted(frames_by_name)
    when = (
        t
        if t is not None
        else max((frames_by_name[n].get("t1", 0.0) for n in names), default=0.0)
    )
    title = f"== protocol tournament · t {when:.1f} s"
    if seed is not None:
        title += f" · seed {seed}"
    lines = [title + " =="]
    headers = ["contestant"] + [h for h, _ in _COMPARE_COLS]
    rows = []
    for name in names:
        frame = frames_by_name[name]
        rows.append([name] + [str(get(frame)) for _, get in _COMPARE_COLS])
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    for name in names:
        for breach in frames_by_name[name].get("breaches", ()):
            lines.append(
                f"BREACH [{name}] {breach.get('slo')}="
                f"{breach.get('value', 0):.6g}"
            )
    lines.append(_RULE)
    return "\n".join(lines)


class ComparisonDashboard:
    """Repaints the tournament comparison table after every lockstep
    window (the ``on_window`` callback of
    :func:`repro.compare.tournament.run_tournament`)."""

    def __init__(self, stream: Optional[TextIO] = None, ansi: Optional[bool] = None):
        self.stream = stream if stream is not None else sys.stdout
        if ansi is None:
            isatty = getattr(self.stream, "isatty", None)
            ansi = bool(isatty()) if callable(isatty) else False
        self.ansi = ansi
        self.windows_rendered = 0

    def __call__(
        self, seed: int, t: float, frames_by_name: Dict[str, Dict[str, Any]]
    ) -> None:
        if not frames_by_name:
            return
        text = render_comparison(frames_by_name, t=t, seed=seed)
        if self.ansi:
            self.stream.write("\x1b[H\x1b[J" + text + "\n")
        else:
            self.stream.write(text + "\n")
        self.stream.flush()
        self.windows_rendered += 1


class TerminalDashboard:
    """Frame sink that repaints a terminal.

    ``ansi=None`` auto-detects: a TTY gets home-cursor + clear-to-end
    repaints, anything else (pipes, CI logs) gets appended blocks.
    """

    def __init__(self, stream: Optional[TextIO] = None, ansi: Optional[bool] = None):
        self.stream = stream if stream is not None else sys.stdout
        if ansi is None:
            isatty = getattr(self.stream, "isatty", None)
            ansi = bool(isatty()) if callable(isatty) else False
        self.ansi = ansi
        self.frames_rendered = 0

    def render(self, frame: Dict[str, Any]) -> None:
        text = render_frame(frame)
        if self.ansi:
            # Home the cursor and clear below rather than wiping the
            # scrollback: breach history stays reachable by scrolling.
            self.stream.write("\x1b[H\x1b[J" + text + "\n")
        else:
            self.stream.write(text + "\n")
        self.stream.flush()
        self.frames_rendered += 1

    # Sink-protocol compatibility with SnapshotWriter.
    def write(self, frame: Dict[str, Any]) -> None:
        self.render(frame)

    def close(self) -> None:
        pass


def watch_file(
    path: str,
    follow: bool = False,
    interval: float = 0.5,
    max_idle: float = 60.0,
    stream: Optional[TextIO] = None,
    ansi: Optional[bool] = None,
    verdict_exit: bool = True,
) -> int:
    """Render the frames of a snapshot JSONL file.

    Without ``follow`` every complete frame currently in the file is
    rendered once.  With ``follow`` the file is tailed — partial lines
    (a writer mid-flush) are left in place until complete — until a
    final frame is seen or no new frame has arrived for ``max_idle``
    seconds.

    Lines the tolerant loader skips (truncated writes, foreign garbage)
    are surfaced as an explicit warning rather than silently dropped —
    a dashboard that renders partial data must say so.

    Returns a shell exit status: 0 when the last rendered frame carries
    no breached SLO verdicts, 1 when it does (``verdict_exit=False``
    suppresses this, always returning 0 once frames rendered), 2 if the
    file never produced a frame.
    """
    from repro.obs.stream import load_frames

    dashboard = TerminalDashboard(stream=stream, ansi=ansi)
    rendered = 0
    healthy = True
    skipped_total = 0
    offset = 0
    pending = ""
    idle = 0.0
    while True:
        try:
            with open(path) as fh:
                fh.seek(offset)
                chunk = fh.read()
                offset = fh.tell()
        except OSError:
            chunk = ""
        pending += chunk
        complete, _, pending = pending.rpartition("\n")
        frames, _, skipped = (
            load_frames(complete.splitlines()) if complete else ([], 0, 0)
        )
        skipped_total += skipped
        saw_final = False
        for frame in frames:
            dashboard.render(frame)
            rendered += 1
            healthy = not frame.get("breaches") and bool(
                frame.get("healthy", True)
            )
            saw_final = saw_final or bool(frame.get("final"))
        if skipped:
            dashboard.stream.write(
                f"WARNING: skipped {skipped} unreadable line(s) in {path} "
                "(render may be partial)\n"
            )
            dashboard.stream.flush()
        if saw_final or not follow:
            break
        if frames:
            idle = 0.0
        else:
            idle += interval
            if idle >= max_idle:
                break
        time.sleep(interval)
    if rendered == 0:
        return 2
    if not verdict_exit:
        return 0
    return 0 if healthy else 1
