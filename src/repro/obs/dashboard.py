"""Terminal rendering of telemetry frames (``repro watch``).

The renderer is deliberately dumb: :func:`render_frame` is a pure
function from one frame dict to a text block, so tests diff strings and
the dashboard works identically whether frames arrive live from a
:class:`~repro.obs.stream.StreamWindower`, are tailed out of a
``--snapshot-jsonl`` file mid-run, or are replayed after the fact.
On a TTY the :class:`TerminalDashboard` repaints in place with plain
ANSI control sequences (no curses dependency); redirected output gets
one block per frame, newline-separated.

Nothing here reads a wall clock: :func:`watch_file` paces its tail loop
with ``time.sleep`` only, and rendering is driven entirely by the
frames' sim-clock timestamps, so the watcher cannot perturb or
misorder what it shows.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO

#: Width of the level-histogram bars.
_BAR_WIDTH = 30
_RULE = "-" * 72


def _bar(count: int, peak: int) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1, round(_BAR_WIDTH * count / peak)) if count else ""


def _fmt_rate(value: float) -> str:
    return f"{value:.4f}" if isinstance(value, float) else str(value)


def render_frame(frame: Dict[str, Any]) -> str:
    """One frame as a text block (pure; deterministic for a given frame)."""
    lines: List[str] = []
    kind = "final" if frame.get("final") else f"window {frame.get('window')}"
    lines.append(
        f"== PeerWindow telemetry · {kind} · "
        f"t {frame.get('t0', 0):.1f}..{frame.get('t1', 0):.1f} s =="
    )
    state = frame.get("state")
    if state:
        lines.append(
            f"nodes: {state.get('live_nodes', '?')} live · "
            f"peer-list error rate {state.get('mean_error_rate', 0):.4f}"
        )
        levels = state.get("levels") or {}
        if levels:
            counts = {int(k): int(v) for k, v in levels.items()}
            peak = max(counts.values())
            for level in sorted(counts):
                count = counts[level]
                lines.append(
                    f"  level {level:>2} |{_bar(count, peak):<{_BAR_WIDTH}}| {count}"
                )
    mcast = frame.get("mcast", {})
    join = frame.get("join", {})
    probe = frame.get("probe", {})
    lines.append(
        f"spans: {frame.get('spans', 0)} · mcast {mcast.get('spans', 0)} "
        f"(redirects {mcast.get('redirects', 0)}, depth<={mcast.get('max_depth', 0)}, "
        f"died {mcast.get('died', 0)}) · join {join.get('ok', 0)}/"
        f"{join.get('ok', 0) + join.get('failed', 0)} ok · "
        f"probe {probe.get('count', 0)} ({probe.get('timeouts', 0)} timeouts) · "
        f"obituaries {frame.get('obituaries', 0)}"
    )
    signals = frame.get("signals", {})
    if signals:
        parts = [f"{name}={_fmt_rate(signals[name])}" for name in sorted(signals)]
        lines.append("signals: " + " ".join(parts))
    breaches = frame.get("breaches", [])
    if breaches:
        for breach in breaches:
            lo = breach.get("lo")
            hi = breach.get("hi")
            band = (
                f"[{'-inf' if lo is None else format(lo, 'g')}, "
                f"{'inf' if hi is None else format(hi, 'g')}]"
            )
            lines.append(
                f"BREACH {breach.get('slo')}={breach.get('value', 0):.6g} band={band}"
            )
    else:
        lines.append("breaches: none")
    if frame.get("final"):
        lines.append(
            "verdict: HEALTHY" if frame.get("healthy") else "verdict: UNHEALTHY"
        )
    lines.append(_RULE)
    return "\n".join(lines)


class TerminalDashboard:
    """Frame sink that repaints a terminal.

    ``ansi=None`` auto-detects: a TTY gets home-cursor + clear-to-end
    repaints, anything else (pipes, CI logs) gets appended blocks.
    """

    def __init__(self, stream: Optional[TextIO] = None, ansi: Optional[bool] = None):
        self.stream = stream if stream is not None else sys.stdout
        if ansi is None:
            isatty = getattr(self.stream, "isatty", None)
            ansi = bool(isatty()) if callable(isatty) else False
        self.ansi = ansi
        self.frames_rendered = 0

    def render(self, frame: Dict[str, Any]) -> None:
        text = render_frame(frame)
        if self.ansi:
            # Home the cursor and clear below rather than wiping the
            # scrollback: breach history stays reachable by scrolling.
            self.stream.write("\x1b[H\x1b[J" + text + "\n")
        else:
            self.stream.write(text + "\n")
        self.stream.flush()
        self.frames_rendered += 1

    # Sink-protocol compatibility with SnapshotWriter.
    def write(self, frame: Dict[str, Any]) -> None:
        self.render(frame)

    def close(self) -> None:
        pass


def watch_file(
    path: str,
    follow: bool = False,
    interval: float = 0.5,
    max_idle: float = 60.0,
    stream: Optional[TextIO] = None,
    ansi: Optional[bool] = None,
) -> int:
    """Render the frames of a snapshot JSONL file.

    Without ``follow`` every complete frame currently in the file is
    rendered once.  With ``follow`` the file is tailed — partial lines
    (a writer mid-flush) are left in place until complete — until a
    final frame is seen or no new frame has arrived for ``max_idle``
    seconds.  Returns a shell exit status: 0 if the last rendered frame
    was healthy (or no verdict was rendered), 1 on an unhealthy final
    frame, 2 if the file never produced a frame.
    """
    from repro.obs.stream import load_frames

    dashboard = TerminalDashboard(stream=stream, ansi=ansi)
    rendered = 0
    healthy = True
    offset = 0
    pending = ""
    idle = 0.0
    while True:
        try:
            with open(path) as fh:
                fh.seek(offset)
                chunk = fh.read()
                offset = fh.tell()
        except OSError:
            chunk = ""
        pending += chunk
        complete, _, pending = pending.rpartition("\n")
        frames, _, _ = load_frames(complete.splitlines()) if complete else ([], 0, 0)
        saw_final = False
        for frame in frames:
            dashboard.render(frame)
            rendered += 1
            healthy = bool(frame.get("healthy", True))
            saw_final = saw_final or bool(frame.get("final"))
        if saw_final or not follow:
            break
        if frames:
            idle = 0.0
        else:
            idle += interval
            if idle >= max_idle:
                break
        time.sleep(interval)
    if rendered == 0:
        return 2
    return 0 if healthy else 1
