"""The health report: one JSON/markdown document per analyzed run.

Combines an :class:`~repro.obs.analyze.AnalysisReport` (span-tree
aggregates), the metrics-derived signals, and the
:class:`~repro.obs.health.HealthSpec` verdicts into a single document —
the artifact ``repro obs report`` writes and ``scripts/check.sh
--health`` asserts on.

Determinism contract: both renderings are pure functions of their
inputs — identical span/metrics exports produce byte-identical output
(pinned by ``tests/obs/test_report.py`` across sequential and
``parallel=4`` runs of the same seed).  Nothing here reads the clock or
the filesystem beyond what it is handed.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.analyze import AnalysisReport
from repro.obs.health import Verdict

__all__ = ["build_report", "render_markdown", "render_json"]

#: Version stamp for the report document itself.
REPORT_VERSION = 1


def build_report(
    analysis: AnalysisReport,
    verdicts: List[Verdict],
    signals: Optional[Dict[str, float]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the JSON-stable report document."""
    return {
        "schema_version": REPORT_VERSION,
        "meta": dict(sorted((meta or {}).items())),
        "healthy": all(v.ok for v in verdicts),
        "verdicts": [v.to_dict() for v in verdicts],
        "signals": dict(sorted((signals or analysis.signals()).items())),
        "analysis": analysis.to_dict(),
    }


def render_json(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _dist_row(name: str, d: Dict[str, float]) -> str:
    return (
        f"| {name} | {int(d['count'])} | {_fmt(d['mean'])} | "
        f"{_fmt(d['min'])} | {_fmt(d['max'])} |"
    )


def render_markdown(doc: Dict[str, Any]) -> str:
    """Render the report document as deterministic markdown."""
    a = doc["analysis"]
    m = a["multicast"]
    lines: List[str] = []
    add = lines.append

    add("# PeerWindow protocol health report")
    add("")
    state = "HEALTHY" if doc["healthy"] else "UNHEALTHY"
    add(f"**Status: {state}** "
        f"({sum(1 for v in doc['verdicts'] if v['ok'])}/"
        f"{len(doc['verdicts'])} SLOs ok)")
    add("")
    if doc["meta"]:
        add("## Run")
        add("")
        add("| key | value |")
        add("|---|---|")
        for key in sorted(doc["meta"]):
            add(f"| {key} | {_fmt(doc['meta'][key])} |")
        add("")

    add("## SLO verdicts")
    add("")
    add("| slo | value | band | ok |")
    add("|---|---|---|---|")
    for v in doc["verdicts"]:
        lo = "-inf" if v["lo"] is None else _fmt(v["lo"])
        hi = "inf" if v["hi"] is None else _fmt(v["hi"])
        mark = "ok" if v["ok"] else "**BREACH**"
        add(f"| {v['slo']} | {_fmt(v['value'])} | [{lo}, {hi}] | {mark} |")
    breached = [v for v in doc["verdicts"] if not v["ok"]]
    if breached:
        add("")
        add("### Breaches")
        add("")
        for v in breached:
            add(f"- `{v['slo']}` = {_fmt(v['value'])}: {v['detail']}")
            if v["traces"]:
                add(f"  - implicated traces: "
                    f"{', '.join('`' + t + '`' for t in v['traces'][:8])}")
    add("")

    add("## Multicast (§4.2)")
    add("")
    add(f"- trees reconstructed: {m['trees']} over {m['spans']} spans "
        f"({_fmt(m['tree_completeness'] * 100)}% in complete trees, "
        f"{m['orphan_hops']} orphan hops)")
    add(f"- non-delivery rate: {_fmt(m['non_delivery_rate'])}; redirects: "
        f"{m['redirects']} ({_fmt(m['redirect_rate'])}/span)")
    add(f"- max depth: {m['max_depth']}")
    add("")
    add("| dist | count | mean | min | max |")
    add("|---|---|---|---|---|")
    add(_dist_row("depth", m["depth"]))
    add(_dist_row("fanout", m["fanout"]))
    add(_dist_row("completion latency (s)", m["completion_latency"]))
    add("")
    if m["per_kind"]:
        add("### Per event kind")
        add("")
        add("| kind | trees | mean depth | mean latency (s) |")
        add("|---|---|---|---|")
        for kind in sorted(m["per_kind"]):
            k = m["per_kind"][kind]
            add(f"| {kind} | {k['trees']} | {_fmt(k['depth']['mean'])} | "
                f"{_fmt(k['completion_latency']['mean'])} |")
        add("")
    if m["per_depth"]:
        add("### Per tree level")
        add("")
        add("| depth | spans |")
        add("|---|---|")
        for depth in sorted(m["per_depth"], key=int):
            add(f"| {depth} | {m['per_depth'][depth]} |")
        add("")

    add("## Join (§4.3)")
    add("")
    j = a["join"]
    add(f"- handshakes: {j['ok']} ok, {j['failed']} failed "
        f"(failure rate {_fmt(j['failure_rate'])})")
    add("")
    add("| dist | count | mean | min | max |")
    add("|---|---|---|---|---|")
    add(_dist_row("warm-up (s)", j["warmup"]))
    add("")

    add("## Failure detection (§4.1)")
    add("")
    p = a["probe"]
    o = a["obituaries"]
    add(f"- probes: {p['count']} ({p['timeouts']} timeouts, rate "
        f"{_fmt(p['timeout_rate'])})")
    vias = ", ".join(
        f"{via}: {count}" for via, count in sorted(o["by_via"].items())
    ) or "none"
    add(f"- obituaries: {vias}")
    add(f"- false positives: {o['false_positives']} "
        f"(rate {_fmt(o['false_positive_rate'])})")
    add("")

    add("## Log")
    add("")
    add(f"- {a['spans_total']} spans from {a['nodes']} nodes, simulated "
        f"interval [{_fmt(a['sim_span'][0])}, {_fmt(a['sim_span'][1])}] s, "
        f"span schema v{a['schema_version']}")
    if a.get("lines_skipped"):
        add(f"- **{a['lines_skipped']} malformed/truncated line(s) skipped** "
            f"while loading the span log")
    add("")
    return "\n".join(lines)
