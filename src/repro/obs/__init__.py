"""repro.obs — deterministic observability for the PeerWindow simulator.

Three concerns, one package:

* :mod:`repro.obs.trace` — causal span trees over protocol operations,
  propagated across nodes via ``Message.trace`` (sim-clock timestamps,
  deterministic ids);
* :mod:`repro.obs.metrics` — per-node counter/gauge/distribution
  registry with exact network-wide aggregation;
* :mod:`repro.obs.profile` — wall-clock phase timers for the engines
  (explicitly non-deterministic, excluded from equivalence checks);
* :mod:`repro.obs.export` — JSONL / Chrome trace_event / JSON / CSV
  writers plus the span schema validator;
* :mod:`repro.obs.stream` — the streaming telemetry bus: windowed
  incremental aggregation over the live emit paths, deterministic
  per-window frames, and the live-backend frame merge;
* :mod:`repro.obs.dashboard` — terminal rendering of telemetry frames
  (``repro watch``).

Everything is disabled by default and adds no messages, no RNG draws,
and no timing changes when enabled — sequential/parallel equivalence
and chaos replay determinism hold with observability on or off.
"""

from repro.obs.export import (
    METRICS_SCHEMA_VERSION,
    SPAN_SCHEMA_VERSION,
    prepare_output_path,
    span_from_dict,
    spans_to_chrome,
    spans_to_jsonl,
    validate_span_file,
    validate_span_lines,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    METRIC_CATALOG,
    METRIC_NAME_RE,
    Dist,
    MetricSpec,
    MetricsRegistry,
    aggregate_snapshots,
    declare_metric,
    flatten_snapshot,
    known_metric,
)
from repro.obs.profile import PhaseProfiler, merge_profiles
from repro.obs.stream import (
    TELEMETRY_SCHEMA_VERSION,
    NodeTap,
    SnapshotWriter,
    StreamConfig,
    StreamWindower,
    TelemetryBus,
    WindowAggregator,
    WindowBucket,
    frame_line,
    load_frames,
    load_frames_file,
    merge_node_frames,
    telemetry_header_line,
)
from repro.obs.trace import NodeObs, Observability, Span, SpanRef

__all__ = [
    "METRIC_CATALOG",
    "METRIC_NAME_RE",
    "METRICS_SCHEMA_VERSION",
    "SPAN_SCHEMA_VERSION",
    "TELEMETRY_SCHEMA_VERSION",
    "NodeTap",
    "SnapshotWriter",
    "StreamConfig",
    "StreamWindower",
    "TelemetryBus",
    "WindowAggregator",
    "WindowBucket",
    "frame_line",
    "load_frames",
    "load_frames_file",
    "merge_node_frames",
    "telemetry_header_line",
    "span_from_dict",
    "Dist",
    "MetricSpec",
    "MetricsRegistry",
    "declare_metric",
    "known_metric",
    "NodeObs",
    "Observability",
    "PhaseProfiler",
    "Span",
    "SpanRef",
    "aggregate_snapshots",
    "flatten_snapshot",
    "merge_profiles",
    "prepare_output_path",
    "spans_to_chrome",
    "spans_to_jsonl",
    "validate_span_file",
    "validate_span_lines",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
    "write_spans_jsonl",
]
