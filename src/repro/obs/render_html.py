"""Dependency-free static HTML renderer for recorded telemetry.

``repro obs render`` turns any ``repro.telemetry`` frame JSONL (and
optionally a span JSONL) into one self-contained HTML page: window
timeline with breach markers and the error-rate polyline, the final
level histogram, the signal/verdict tables, and reconstructed multicast
tree shapes.  No JavaScript, no external assets, no wall clock — the
page is a pure function of the recorded artifacts, so re-rendering a
run reproduces the file byte-for-byte.

Everything user-controlled passes through :func:`html.escape`; SVG is
hand-assembled from the same numbers the terminal dashboard prints.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional

from repro.obs.dashboard import render_mcast_trees

__all__ = ["build_html"]

_CSS = """
body { font-family: monospace; background: #fdfdfd; color: #222;
       max-width: 72rem; margin: 1rem auto; padding: 0 1rem; }
h1, h2 { font-weight: bold; border-bottom: 1px solid #ccc; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid #bbb; padding: 0.15rem 0.5rem; text-align: right; }
th { background: #eee; }
td.name, th.name { text-align: left; }
pre { background: #f4f4f4; padding: 0.5rem; overflow-x: auto; }
.breach { color: #a00; font-weight: bold; }
.ok { color: #070; }
svg { background: #fff; border: 1px solid #ccc; }
.warn { background: #fff3cd; border: 1px solid #dca; padding: 0.3rem 0.6rem; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _svg_timeline(frames: List[Dict[str, Any]]) -> str:
    """Per-window span bars, breach markers, and the error-rate line."""
    windows = [f for f in frames if not f.get("final")]
    if not windows:
        return "<p>no closed windows recorded</p>"
    width, height, pad = 680, 160, 24
    n = len(windows)
    slot = (width - 2 * pad) / n
    peak_spans = max(max(f.get("spans", 0) for f in windows), 1)
    errors = [
        (f.get("state") or {}).get("mean_error_rate") for f in windows
    ]
    peak_err = max([e for e in errors if e is not None] + [0.0]) or 1.0
    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="window timeline">'
    ]
    for i, frame in enumerate(windows):
        x = pad + i * slot
        spans = frame.get("spans", 0)
        bar_h = (height - 2 * pad) * spans / peak_spans
        y = height - pad - bar_h
        breached = bool(frame.get("breaches"))
        fill = "#c62828" if breached else "#90a4ae"
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{max(slot - 2, 1):.1f}" '
            f'height="{bar_h:.1f}" fill="{fill}">'
            f"<title>window {_esc(frame.get('window'))}: {spans} spans"
            f"{' · BREACH' if breached else ''}</title></rect>"
        )
    points = []
    for i, err in enumerate(errors):
        if err is None:
            continue
        x = pad + (i + 0.5) * slot
        y = height - pad - (height - 2 * pad) * float(err) / peak_err
        points.append(f"{x:.1f},{y:.1f}")
    if points:
        parts.append(
            f'<polyline points="{" ".join(points)}" fill="none" '
            f'stroke="#1565c0" stroke-width="1.5">'
            f"<title>mean peer-list error rate (peak {peak_err:.4g})"
            f"</title></polyline>"
        )
    parts.append(
        f'<text x="{pad}" y="{height - 6}" font-size="10">'
        f"{n} windows · bar=spans/window (peak {peak_spans}) · "
        f"line=error rate (peak {peak_err:.4g}) · red=breached window</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _svg_levels(state: Dict[str, Any]) -> str:
    levels = state.get("levels") or {}
    if not levels:
        return "<p>no level histogram in final frame</p>"
    counts = {int(k): int(v) for k, v in levels.items()}
    peak = max(counts.values())
    width, row_h, pad = 480, 18, 4
    height = (row_h + pad) * len(counts) + pad
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="level histogram">']
    for i, level in enumerate(sorted(counts)):
        count = counts[level]
        y = pad + i * (row_h + pad)
        bar = (width - 140) * count / peak
        parts.append(
            f'<text x="4" y="{y + row_h - 5}" font-size="11">'
            f"level {level}</text>"
            f'<rect x="70" y="{y}" width="{bar:.1f}" height="{row_h}" '
            f'fill="#66bb6a"><title>level {level}: {count} nodes</title></rect>'
            f'<text x="{74 + bar:.1f}" y="{y + row_h - 5}" font-size="11">'
            f"{count}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _signals_table(frame: Dict[str, Any]) -> str:
    signals = frame.get("signals") or {}
    if not signals:
        return "<p>no signals in final frame</p>"
    rows = "".join(
        f'<tr><td class="name">{_esc(name)}</td>'
        f"<td>{_fmt(signals[name])}</td></tr>"
        for name in sorted(signals)
    )
    return (
        '<table><tr><th class="name">signal</th><th>value</th></tr>'
        f"{rows}</table>"
    )


def _verdicts_table(frame: Dict[str, Any]) -> str:
    verdicts = frame.get("verdicts") or []
    if not verdicts:
        return "<p>no verdicts (no health spec attached)</p>"
    rows = []
    for v in verdicts:
        cls = "ok" if v.get("ok") else "breach"
        word = "ok" if v.get("ok") else "BREACH"
        rows.append(
            f'<tr><td class="name">{_esc(v.get("slo"))}</td>'
            f"<td>{_fmt(v.get('value'))}</td>"
            f"<td>{_fmt(v.get('lo'))}</td><td>{_fmt(v.get('hi'))}</td>"
            f'<td class="{cls}">{word}</td></tr>'
        )
    return (
        '<table><tr><th class="name">slo</th><th>value</th>'
        "<th>lo</th><th>hi</th><th>verdict</th></tr>"
        + "".join(rows) + "</table>"
    )


def build_html(
    frames: List[Dict[str, Any]],
    spans: Optional[List[Any]] = None,
    title: str = "repro telemetry",
    lines_skipped: int = 0,
    tree_limit: int = 3,
) -> str:
    """Render recorded frames (and optionally spans) to one page."""
    final = next(
        (f for f in reversed(frames) if f.get("final")),
        frames[-1] if frames else {},
    )
    sections: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if lines_skipped:
        sections.append(
            f'<p class="warn">WARNING: {lines_skipped} unreadable line(s) '
            "were skipped while loading — this page may be partial.</p>"
        )
    windows = sum(1 for f in frames if not f.get("final"))
    t1 = final.get("t1", 0.0)
    healthy = final.get("healthy")
    verdict = (
        '<span class="ok">HEALTHY</span>'
        if healthy
        else '<span class="breach">UNHEALTHY</span>'
        if healthy is not None
        else "unjudged"
    )
    sections.append(
        f"<p>{windows} windows · sim time {_fmt(float(t1))} s · "
        f"final verdict: {verdict}</p>"
    )
    sections.append("<h2>Window timeline</h2>")
    sections.append(_svg_timeline(frames))
    sections.append("<h2>Final level histogram</h2>")
    sections.append(_svg_levels(final.get("state") or {}))
    sections.append("<h2>Final signals</h2>")
    sections.append(_signals_table(final))
    sections.append("<h2>SLO verdicts</h2>")
    sections.append(_verdicts_table(final))
    if spans:
        sections.append("<h2>Multicast tree shapes</h2>")
        sections.append(
            "<pre>"
            + _esc(render_mcast_trees(spans, limit=tree_limit))
            + "</pre>"
        )
    sections.append("</body></html>")
    return "\n".join(sections) + "\n"
