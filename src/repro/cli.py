"""Command-line interface: regenerate any paper figure from the shell.

::

    python -m repro fig5                    # common-run level distribution
    python -m repro fig9 --scales 5000 20000 100000
    python -m repro fig12 --rates 0.1 1 10
    python -m repro common -n 100000        # figures 5-8 in one run
    python -m repro predict -n 100000       # closed-form predictions
    python -m repro baselines               # the intro comparison table
    python -m repro lint src/repro          # detlint static analysis

Every command prints the same table the corresponding benchmark prints
and optionally writes it as CSV (``--csv out.csv``).
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from dataclasses import replace
from typing import Iterable, List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.scalable import ScalableParams, ScalableSim
from repro.experiments.scenario import COMMON_FULL
from repro.workloads.lifetime import GnutellaLifetimeDistribution


def _emit(args, title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [list(r) for r in rows]
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
    if args.csv:
        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(headers)
            writer.writerows(rows)
        print(f"[wrote {args.csv}]")


def _params(args, **overrides) -> ScalableParams:
    base = replace(
        COMMON_FULL,
        n_target=args.nodes,
        duration_s=args.duration,
        warmup_s=args.warmup,
        seed=args.seed,
    )
    return replace(base, **overrides) if overrides else base


def _run(params: ScalableParams):
    sim = ScalableSim(
        params,
        lifetime_dist=GnutellaLifetimeDistribution(lifetime_rate=params.lifetime_rate),
    )
    return sim.run()


def cmd_common(args) -> None:
    result = _run(_params(args))
    _emit(
        args,
        f"common PeerWindow, N={args.nodes:,} (figures 5-8)",
        ["level", "nodes", "fraction", "mean_list", "min", "max",
         "error_rate", "in_bps", "out_bps"],
        [
            [r.level, r.population, round(r.fraction, 4),
             round(r.mean_list_size, 1), r.min_list_size, r.max_list_size,
             round(r.error_rate, 6), round(r.in_bps, 1), round(r.out_bps, 1)]
            for r in result.rows if r.population > 0
        ],
    )
    print(f"mean error rate: {result.mean_error_rate:.5f}; "
          f"tree depth mean {result.mean_tree_depth:.1f} max {result.max_tree_depth}; "
          f"root out-degree {result.mean_root_out_degree:.1f}")


def cmd_fig(args) -> None:
    result = _run(_params(args))
    fig = args.command
    if fig == "fig5":
        _emit(args, "figure 5 — node distribution", ["level", "nodes", "fraction"],
              [[r.level, r.population, round(r.fraction, 4)]
               for r in result.rows if r.population > 0])
        if args.chart:
            from repro.experiments.plot import level_distribution_chart

            print()
            print(level_distribution_chart(
                [(r.level, r.fraction) for r in result.rows if r.population > 0]
            ))
    elif fig == "fig6":
        _emit(args, "figure 6 — peer-list sizes", ["level", "mean", "min", "max"],
              [[r.level, round(r.mean_list_size, 1), r.min_list_size, r.max_list_size]
               for r in result.rows if r.population > 0])
    elif fig == "fig7":
        _emit(args, "figure 7 — error rates", ["level", "error_rate"],
              [[r.level, round(r.error_rate, 6)]
               for r in result.rows if r.population > 0])
    elif fig == "fig8":
        _emit(args, "figure 8 — bandwidth", ["level", "in_bps", "out_bps"],
              [[r.level, round(r.in_bps, 1), round(r.out_bps, 1)]
               for r in result.rows if r.population > 0])


def cmd_fig9_10(args) -> None:
    rows = []
    for n in args.scales:
        result = _run(_params(args, n_target=int(n)))
        fr = {r.level: r.fraction for r in result.rows if r.population > 0}
        rows.append([int(n), len(fr), round(fr.get(0, 0.0), 4),
                     round(result.mean_error_rate, 6)])
    _emit(args, "figures 9/10 — scale sweep",
          ["N", "levels", "frac_L0", "mean_error"], rows)
    if args.chart:
        from repro.experiments.plot import line_chart

        print()
        print(line_chart([(r[0], r[3]) for r in rows], title="mean error vs N"))


def cmd_fig11_12(args) -> None:
    rows = []
    for rate in args.rates:
        result = _run(_params(args, lifetime_rate=float(rate)))
        fr = {r.level: r.fraction for r in result.rows if r.population > 0}
        rows.append([rate, len(fr), round(fr.get(0, 0.0), 4),
                     round(result.mean_error_rate, 6)])
    _emit(args, "figures 11/12 — Lifetime_Rate sweep",
          ["rate", "levels", "frac_L0", "mean_error"], rows)
    if args.chart:
        from repro.experiments.plot import line_chart

        print()
        print(line_chart(
            [(r[0], r[3]) for r in rows],
            title="mean error vs Lifetime_Rate (log y — figure 12)",
            log_y=True,
        ))


def cmd_predict(args) -> None:
    from repro.experiments.predict import (
        predict_bps_per_1000_pointers,
        predict_error_rate,
        predict_level_distribution,
        predict_n_levels,
    )

    dist = predict_level_distribution(args.nodes)
    _emit(args, f"closed-form level distribution, N={args.nodes:,}",
          ["level", "fraction"],
          [[l, round(f, 4)] for l, f in sorted(dist.items())])
    print(f"predicted levels: {predict_n_levels(args.nodes)}")
    print(f"predicted mean error rate: {predict_error_rate(args.nodes):.5f}")
    print(f"input bps per 1000 pointers: {predict_bps_per_1000_pointers():.0f}")


def cmd_baselines(args) -> None:
    from repro.baselines.explicit_probe import ExplicitProbeScheme
    from repro.baselines.gossip import GossipMulticastScheme
    from repro.baselines.onehop import OneHopDHTScheme
    from repro.baselines.random_walk import RandomWalkScheme
    from repro.core.analytic import CostModel

    pw = CostModel(mean_lifetime_s=3600.0)
    schemes = [
        ExplicitProbeScheme(mean_lifetime_s=3600.0),
        GossipMulticastScheme(redundancy=4.0),
        OneHopDHTScheme(n_nodes=args.nodes, mean_lifetime_s=3600.0),
        RandomWalkScheme(mean_lifetime_s=3600.0),
    ]
    budgets = [500.0, 5_000.0, 50_000.0]
    rows = []
    for w in budgets:
        rows.append([f"{w:,.0f}", round(pw.pointers_for_bandwidth(w), 1)]
                    + [round(s.pointers_for_bandwidth(w), 1) for s in schemes])
    _emit(args, f"pointers per budget (N={args.nodes:,}, L=1h)",
          ["budget_bps", "peerwindow"] + [s.name for s in schemes], rows)


def cmd_chaos(args) -> int:
    from repro.chaos import SCENARIOS, ChaosRunner
    from repro.obs.export import (
        prepare_output_path,
        write_chrome_trace,
        write_spans_jsonl,
    )

    if args.list:
        _emit(args, "chaos scenarios",
              ["scenario", "default_nodes", "description"],
              [[s.name, s.default_nodes, s.description]
               for s in SCENARIOS.values()])
        return 0
    scenario = SCENARIOS.get(args.scenario)
    if scenario is None:
        print(f"unknown scenario {args.scenario!r}; "
              f"choose from: {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
        return 2
    # Validate output paths up front: a bad --trace/--spans/--chrome
    # destination should fail before the run, not after it.
    if args.trace:
        prepare_output_path(args.trace, what="chaos trace")
    if args.spans:
        prepare_output_path(args.spans, what="span export")
    if args.chrome:
        prepare_output_path(args.chrome, what="Chrome trace")
    observe = bool(args.spans or args.chrome)
    runner = ChaosRunner(
        scenario, n_nodes=args.nodes, seed=args.seed, observe=observe
    )
    result = runner.run()
    _emit(
        args,
        f"chaos {result.scenario}, N={result.n_nodes}, seed={result.seed}",
        ["metric", "value"],
        [
            ["simulated_seconds", round(result.duration, 1)],
            ["faults_injected", result.faults_injected],
            ["safety_checks", result.safety_checks],
            ["convergence_checks", result.convergence_checks],
            ["live_nodes", result.live_nodes],
            ["mean_error_rate", round(result.mean_error_rate, 6)],
            ["violations", len(result.violations)],
        ] + ([["spans_recorded", len(result.spans)]] if observe else []),
    )
    if args.trace:
        path = prepare_output_path(args.trace, what="chaos trace")
        with open(path, "w") as fh:
            fh.write(result.trace)
        print(f"[wrote {path}]")
    if args.spans:
        print(f"[wrote {write_spans_jsonl(args.spans, result.spans)}]")
    if args.chrome:
        print(f"[wrote {write_chrome_trace(args.chrome, result.spans)}]")
    if result.violations:
        print(f"\nFAIL: {len(result.violations)} invariant violation(s); first 20:")
        for v in result.violations[:20]:
            print("  " + v.describe())
        return 1
    print("\nOK: all invariants held (safety throughout; convergence after "
          "each quiescence window)")
    return 0


def cmd_obs(args) -> int:
    """An instrumented churn run: spans, metrics, profile, exporters."""
    from repro.core.config import ProtocolConfig
    from repro.core.protocol import PeerWindowNetwork
    from repro.net.latency import PairwiseLatencyModel
    from repro.obs.export import (
        prepare_output_path,
        profile_rows,
        write_chrome_trace,
        write_metrics_csv,
        write_metrics_json,
        write_spans_jsonl,
    )
    from repro.sim.rng import RandomStreams

    # Validate output paths up front so a bad destination fails before
    # the (possibly long) instrumented run.
    for path, what in ((args.spans, "span export"),
                       (args.chrome, "Chrome trace"),
                       (args.metrics, "metrics JSON"),
                       (args.metrics_csv, "metrics CSV")):
        if path:
            prepare_output_path(path, what=what)

    config = ProtocolConfig(id_bits=16)
    net = PeerWindowNetwork(
        config=config,
        topology=PairwiseLatencyModel(),
        master_seed=args.seed,
        parallel=args.parallel,
        observability=True,
    )
    net.seed_nodes([4000.0] * args.nodes)
    if args.profile:
        net.enable_profiling()
    # Deterministic churn so every instrumented path fires: a few joins
    # (handshakes + JOIN multicasts) and leaves/timeout-driven obituaries.
    churn_rng = RandomStreams(args.seed).get("obs-churn")
    keys = list(net.nodes)
    bootstrap = keys[0]
    n_churn = max(2, args.nodes // 20)
    for key in sorted(churn_rng.choice(keys[1:], size=n_churn, replace=False)):
        net.leave(int(key))
    net.run(until=args.duration / 2)
    for _ in range(n_churn):
        net.add_node(4000.0, bootstrap)
    net.run(until=args.duration)

    snapshot = net.metrics_snapshot()
    spans = net.spans()
    by_name: dict = {}
    for s in spans:
        by_name[s.name] = by_name.get(s.name, 0) + 1
    _emit(
        args,
        f"obs run, N={args.nodes}, seed={args.seed}, "
        f"{'parallel=' + str(args.parallel) if args.parallel else 'sequential'}",
        ["span", "count"],
        [[name, by_name[name]] for name in sorted(by_name)],
    )
    print(f"{len(spans)} spans in {len(net.traces())} traces; "
          f"{len(snapshot['counters'])} counters, "
          f"{len(snapshot['dists'])} distributions over "
          f"{snapshot['nodes']} nodes")
    if args.spans:
        print(f"[wrote {write_spans_jsonl(args.spans, spans)}]")
    if args.chrome:
        print(f"[wrote {write_chrome_trace(args.chrome, spans)}]")
    if args.metrics:
        print(f"[wrote {write_metrics_json(args.metrics, snapshot)}]")
    if args.metrics_csv:
        print(f"[wrote {write_metrics_csv(args.metrics_csv, snapshot)}]")
    if args.profile:
        print("\n== profile ==")
        print(format_table(["phase", "calls", "seconds", "mean_us"],
                           profile_rows(net.profile_snapshot())))
    return 0


def cmd_lint(args) -> int:
    """detlint: the determinism & LP-isolation static analyzer."""
    import json as _json

    from repro.analysis import Baseline, all_rules, run_lint
    from repro.paths import prepare_output_path

    rules = all_rules()
    if args.rules:
        _emit(args, "detlint rules", ["rule", "title"],
              [[r.id, r.title] for r in rules])
        if args.explain:
            for r in rules:
                print(f"\n{r.id} — {r.title}\n  {r.rationale}")
        return 0
    # Validate report/baseline destinations before the (possibly long) walk.
    if args.report:
        prepare_output_path(args.report, what="lint report")
    if args.write_baseline:
        prepare_output_path(args.baseline, what="detlint baseline")

    paths = args.paths or ["src/repro"]
    findings = run_lint(paths, rules=rules)

    if args.write_baseline:
        baseline = Baseline.from_findings(findings)
        print(f"[wrote {baseline.save(args.baseline)}: "
              f"{len(findings)} grandfathered finding(s)]")
        return 0

    baseline = Baseline()
    if args.baseline and os.path.exists(args.baseline):
        baseline = Baseline.load(args.baseline)
    new, grandfathered = baseline.split(findings)

    if args.format == "json":
        doc = {
            "findings": [f.to_dict() for f in new],
            "baselined": len(grandfathered),
            "checked_rules": [r.id for r in rules],
        }
        text = _json.dumps(doc, indent=2, sort_keys=True) + "\n"
        if args.report:
            with open(args.report, "w") as fh:
                fh.write(text)
            print(f"[wrote {args.report}]")
        else:
            print(text, end="")
    else:
        lines = [f.describe() for f in new]
        summary = (
            f"{len(new)} finding(s)"
            + (f", {len(grandfathered)} baselined" if grandfathered else "")
            + f" across {len(rules)} rules"
        )
        if args.report:
            with open(args.report, "w") as fh:
                fh.write("\n".join(lines + [summary]) + "\n")
            print(f"[wrote {args.report}]")
        else:
            for line in lines:
                print(line)
            print(summary)
    return 1 if new else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PeerWindow (ICPP 2005) reproduction — regenerate any paper figure.",
    )
    common_opts = argparse.ArgumentParser(add_help=False)
    common_opts.add_argument("--csv", help="also write the table as CSV")
    common_opts.add_argument("--chart", action="store_true",
                             help="also draw a terminal chart")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sim_args(p):
        p.add_argument("-n", "--nodes", type=int, default=20_000,
                       help="system scale (paper: 100000)")
        p.add_argument("--duration", type=float, default=1200.0,
                       help="measured seconds after warm-up")
        p.add_argument("--warmup", type=float, default=400.0)
        p.add_argument("--seed", type=int, default=1)

    for name, fn in (
        ("common", cmd_common),
        ("fig5", cmd_fig), ("fig6", cmd_fig), ("fig7", cmd_fig), ("fig8", cmd_fig),
    ):
        p = sub.add_parser(name, parents=[common_opts])
        add_sim_args(p)
        p.set_defaults(func=fn)

    p9 = sub.add_parser("fig9", parents=[common_opts], help="scale sweep (also fig10 error column)")
    add_sim_args(p9)
    p9.add_argument("--scales", nargs="+", type=int,
                    default=[5_000, 20_000, 100_000])
    p9.set_defaults(func=cmd_fig9_10)

    p11 = sub.add_parser("fig11", parents=[common_opts], help="Lifetime_Rate sweep (also fig12 error column)")
    add_sim_args(p11)
    p11.add_argument("--rates", nargs="+", type=float,
                     default=[0.1, 0.5, 1.0, 2.0, 10.0])
    p11.set_defaults(func=cmd_fig11_12)

    pp = sub.add_parser("predict", parents=[common_opts], help="closed-form predictions (no simulation)")
    pp.add_argument("-n", "--nodes", type=int, default=100_000)
    pp.set_defaults(func=cmd_predict)

    pb = sub.add_parser("baselines", parents=[common_opts], help="the intro comparison table")
    pb.add_argument("-n", "--nodes", type=int, default=100_000)
    pb.set_defaults(func=cmd_baselines)

    pch = sub.add_parser("chaos", parents=[common_opts],
                         help="deterministic fault-injection run with live "
                              "invariant checking")
    pch.add_argument("--scenario", default="smoke",
                     help="scenario name (--list shows all)")
    pch.add_argument("-n", "--nodes", type=int, default=None,
                     help="population (default: the scenario's)")
    pch.add_argument("--seed", type=int, default=0,
                     help="master seed; same seed => byte-identical trace")
    pch.add_argument("--trace", help="write the deterministic fault/state trace here")
    pch.add_argument("--spans", help="record observability spans and write them "
                                     "as JSONL here (enables tracing)")
    pch.add_argument("--chrome", help="write a Chrome trace_event file here "
                                      "(open in about://tracing; enables tracing)")
    pch.add_argument("--list", action="store_true", help="list scenarios and exit")
    pch.set_defaults(func=cmd_chaos)

    pobs = sub.add_parser("obs", parents=[common_opts],
                          help="instrumented churn run: span tree, metrics "
                               "registry, exporters, profiling")
    pobs.add_argument("-n", "--nodes", type=int, default=200)
    pobs.add_argument("--duration", type=float, default=300.0,
                      help="simulated seconds")
    pobs.add_argument("--seed", type=int, default=1)
    pobs.add_argument("--parallel", type=int, default=None,
                      help="run on N logical processes (byte-identical output)")
    pobs.add_argument("--spans", help="write spans as JSONL here")
    pobs.add_argument("--chrome", help="write a Chrome trace_event file here")
    pobs.add_argument("--metrics", help="write the metrics snapshot as JSON here")
    pobs.add_argument("--metrics-csv", dest="metrics_csv",
                      help="write the metrics snapshot as CSV here")
    pobs.add_argument("--profile", action="store_true",
                      help="attach wall-clock phase profilers and print them")
    pobs.set_defaults(func=cmd_obs)

    plint = sub.add_parser(
        "lint", parents=[common_opts],
        help="detlint: statically check the determinism & LP-isolation "
             "contracts (DET*/ISO*/OBS* rules)")
    plint.add_argument("paths", nargs="*",
                       help="files or directories (default: src/repro)")
    plint.add_argument("--format", choices=("text", "json"), default="text",
                       help="finding output format")
    plint.add_argument("--baseline", default="detlint-baseline.json",
                       help="baseline file of grandfathered findings "
                            "(missing file = empty baseline)")
    plint.add_argument("--write-baseline", action="store_true",
                       help="write current findings to the baseline file "
                            "and exit 0")
    plint.add_argument("--report", help="write findings to this file "
                                        "instead of stdout")
    plint.add_argument("--rules", action="store_true",
                       help="list the rule catalog and exit")
    plint.add_argument("--explain", action="store_true",
                       help="with --rules: include each rule's rationale")
    plint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        rc = args.func(args)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return rc if isinstance(rc, int) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
