"""Command-line interface: regenerate any paper figure from the shell.

::

    python -m repro fig5                    # common-run level distribution
    python -m repro fig9 --scales 5000 20000 100000
    python -m repro fig12 --rates 0.1 1 10
    python -m repro common -n 100000        # figures 5-8 in one run
    python -m repro predict -n 100000       # closed-form predictions
    python -m repro baselines               # the intro comparison table

Every command prints the same table the corresponding benchmark prints
and optionally writes it as CSV (``--csv out.csv``).
"""

from __future__ import annotations

import argparse
import csv
import sys
from dataclasses import replace
from typing import Iterable, List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.scalable import ScalableParams, ScalableSim
from repro.experiments.scenario import COMMON_FULL
from repro.workloads.lifetime import GnutellaLifetimeDistribution


def _emit(args, title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [list(r) for r in rows]
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
    if args.csv:
        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(headers)
            writer.writerows(rows)
        print(f"[wrote {args.csv}]")


def _params(args, **overrides) -> ScalableParams:
    base = replace(
        COMMON_FULL,
        n_target=args.nodes,
        duration_s=args.duration,
        warmup_s=args.warmup,
        seed=args.seed,
    )
    return replace(base, **overrides) if overrides else base


def _run(params: ScalableParams):
    sim = ScalableSim(
        params,
        lifetime_dist=GnutellaLifetimeDistribution(lifetime_rate=params.lifetime_rate),
    )
    return sim.run()


def cmd_common(args) -> None:
    result = _run(_params(args))
    _emit(
        args,
        f"common PeerWindow, N={args.nodes:,} (figures 5-8)",
        ["level", "nodes", "fraction", "mean_list", "min", "max",
         "error_rate", "in_bps", "out_bps"],
        [
            [r.level, r.population, round(r.fraction, 4),
             round(r.mean_list_size, 1), r.min_list_size, r.max_list_size,
             round(r.error_rate, 6), round(r.in_bps, 1), round(r.out_bps, 1)]
            for r in result.rows if r.population > 0
        ],
    )
    print(f"mean error rate: {result.mean_error_rate:.5f}; "
          f"tree depth mean {result.mean_tree_depth:.1f} max {result.max_tree_depth}; "
          f"root out-degree {result.mean_root_out_degree:.1f}")


def cmd_fig(args) -> None:
    result = _run(_params(args))
    fig = args.command
    if fig == "fig5":
        _emit(args, "figure 5 — node distribution", ["level", "nodes", "fraction"],
              [[r.level, r.population, round(r.fraction, 4)]
               for r in result.rows if r.population > 0])
        if args.chart:
            from repro.experiments.plot import level_distribution_chart

            print()
            print(level_distribution_chart(
                [(r.level, r.fraction) for r in result.rows if r.population > 0]
            ))
    elif fig == "fig6":
        _emit(args, "figure 6 — peer-list sizes", ["level", "mean", "min", "max"],
              [[r.level, round(r.mean_list_size, 1), r.min_list_size, r.max_list_size]
               for r in result.rows if r.population > 0])
    elif fig == "fig7":
        _emit(args, "figure 7 — error rates", ["level", "error_rate"],
              [[r.level, round(r.error_rate, 6)]
               for r in result.rows if r.population > 0])
    elif fig == "fig8":
        _emit(args, "figure 8 — bandwidth", ["level", "in_bps", "out_bps"],
              [[r.level, round(r.in_bps, 1), round(r.out_bps, 1)]
               for r in result.rows if r.population > 0])


def cmd_fig9_10(args) -> None:
    rows = []
    for n in args.scales:
        result = _run(_params(args, n_target=int(n)))
        fr = {r.level: r.fraction for r in result.rows if r.population > 0}
        rows.append([int(n), len(fr), round(fr.get(0, 0.0), 4),
                     round(result.mean_error_rate, 6)])
    _emit(args, "figures 9/10 — scale sweep",
          ["N", "levels", "frac_L0", "mean_error"], rows)
    if args.chart:
        from repro.experiments.plot import line_chart

        print()
        print(line_chart([(r[0], r[3]) for r in rows], title="mean error vs N"))


def cmd_fig11_12(args) -> None:
    rows = []
    for rate in args.rates:
        result = _run(_params(args, lifetime_rate=float(rate)))
        fr = {r.level: r.fraction for r in result.rows if r.population > 0}
        rows.append([rate, len(fr), round(fr.get(0, 0.0), 4),
                     round(result.mean_error_rate, 6)])
    _emit(args, "figures 11/12 — Lifetime_Rate sweep",
          ["rate", "levels", "frac_L0", "mean_error"], rows)
    if args.chart:
        from repro.experiments.plot import line_chart

        print()
        print(line_chart(
            [(r[0], r[3]) for r in rows],
            title="mean error vs Lifetime_Rate (log y — figure 12)",
            log_y=True,
        ))


def cmd_predict(args) -> None:
    from repro.experiments.predict import (
        predict_bps_per_1000_pointers,
        predict_error_rate,
        predict_level_distribution,
        predict_n_levels,
    )

    dist = predict_level_distribution(args.nodes)
    _emit(args, f"closed-form level distribution, N={args.nodes:,}",
          ["level", "fraction"],
          [[l, round(f, 4)] for l, f in sorted(dist.items())])
    print(f"predicted levels: {predict_n_levels(args.nodes)}")
    print(f"predicted mean error rate: {predict_error_rate(args.nodes):.5f}")
    print(f"input bps per 1000 pointers: {predict_bps_per_1000_pointers():.0f}")


def cmd_baselines(args) -> None:
    from repro.baselines.explicit_probe import ExplicitProbeScheme
    from repro.baselines.gossip import GossipMulticastScheme
    from repro.baselines.onehop import OneHopDHTScheme
    from repro.baselines.random_walk import RandomWalkScheme
    from repro.core.analytic import CostModel

    pw = CostModel(mean_lifetime_s=3600.0)
    schemes = [
        ExplicitProbeScheme(mean_lifetime_s=3600.0),
        GossipMulticastScheme(redundancy=4.0),
        OneHopDHTScheme(n_nodes=args.nodes, mean_lifetime_s=3600.0),
        RandomWalkScheme(mean_lifetime_s=3600.0),
    ]
    budgets = [500.0, 5_000.0, 50_000.0]
    rows = []
    for w in budgets:
        rows.append([f"{w:,.0f}", round(pw.pointers_for_bandwidth(w), 1)]
                    + [round(s.pointers_for_bandwidth(w), 1) for s in schemes])
    _emit(args, f"pointers per budget (N={args.nodes:,}, L=1h)",
          ["budget_bps", "peerwindow"] + [s.name for s in schemes], rows)


def cmd_chaos(args) -> int:
    from repro.chaos import SCENARIOS, ChaosRunner

    if args.list:
        _emit(args, "chaos scenarios",
              ["scenario", "default_nodes", "description"],
              [[s.name, s.default_nodes, s.description]
               for s in SCENARIOS.values()])
        return 0
    scenario = SCENARIOS.get(args.scenario)
    if scenario is None:
        print(f"unknown scenario {args.scenario!r}; "
              f"choose from: {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
        return 2
    runner = ChaosRunner(scenario, n_nodes=args.nodes, seed=args.seed)
    result = runner.run()
    _emit(
        args,
        f"chaos {result.scenario}, N={result.n_nodes}, seed={result.seed}",
        ["metric", "value"],
        [
            ["simulated_seconds", round(result.duration, 1)],
            ["faults_injected", result.faults_injected],
            ["safety_checks", result.safety_checks],
            ["convergence_checks", result.convergence_checks],
            ["live_nodes", result.live_nodes],
            ["mean_error_rate", round(result.mean_error_rate, 6)],
            ["violations", len(result.violations)],
        ],
    )
    if args.trace:
        with open(args.trace, "w") as fh:
            fh.write(result.trace)
        print(f"[wrote {args.trace}]")
    if result.violations:
        print(f"\nFAIL: {len(result.violations)} invariant violation(s); first 20:")
        for v in result.violations[:20]:
            print("  " + v.describe())
        return 1
    print("\nOK: all invariants held (safety throughout; convergence after "
          "each quiescence window)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PeerWindow (ICPP 2005) reproduction — regenerate any paper figure.",
    )
    common_opts = argparse.ArgumentParser(add_help=False)
    common_opts.add_argument("--csv", help="also write the table as CSV")
    common_opts.add_argument("--chart", action="store_true",
                             help="also draw a terminal chart")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sim_args(p):
        p.add_argument("-n", "--nodes", type=int, default=20_000,
                       help="system scale (paper: 100000)")
        p.add_argument("--duration", type=float, default=1200.0,
                       help="measured seconds after warm-up")
        p.add_argument("--warmup", type=float, default=400.0)
        p.add_argument("--seed", type=int, default=1)

    for name, fn in (
        ("common", cmd_common),
        ("fig5", cmd_fig), ("fig6", cmd_fig), ("fig7", cmd_fig), ("fig8", cmd_fig),
    ):
        p = sub.add_parser(name, parents=[common_opts])
        add_sim_args(p)
        p.set_defaults(func=fn)

    p9 = sub.add_parser("fig9", parents=[common_opts], help="scale sweep (also fig10 error column)")
    add_sim_args(p9)
    p9.add_argument("--scales", nargs="+", type=int,
                    default=[5_000, 20_000, 100_000])
    p9.set_defaults(func=cmd_fig9_10)

    p11 = sub.add_parser("fig11", parents=[common_opts], help="Lifetime_Rate sweep (also fig12 error column)")
    add_sim_args(p11)
    p11.add_argument("--rates", nargs="+", type=float,
                     default=[0.1, 0.5, 1.0, 2.0, 10.0])
    p11.set_defaults(func=cmd_fig11_12)

    pp = sub.add_parser("predict", parents=[common_opts], help="closed-form predictions (no simulation)")
    pp.add_argument("-n", "--nodes", type=int, default=100_000)
    pp.set_defaults(func=cmd_predict)

    pb = sub.add_parser("baselines", parents=[common_opts], help="the intro comparison table")
    pb.add_argument("-n", "--nodes", type=int, default=100_000)
    pb.set_defaults(func=cmd_baselines)

    pch = sub.add_parser("chaos", parents=[common_opts],
                         help="deterministic fault-injection run with live "
                              "invariant checking")
    pch.add_argument("--scenario", default="smoke",
                     help="scenario name (--list shows all)")
    pch.add_argument("-n", "--nodes", type=int, default=None,
                     help="population (default: the scenario's)")
    pch.add_argument("--seed", type=int, default=0,
                     help="master seed; same seed => byte-identical trace")
    pch.add_argument("--trace", help="write the deterministic fault/state trace here")
    pch.add_argument("--list", action="store_true", help="list scenarios and exit")
    pch.set_defaults(func=cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rc = args.func(args)
    return rc if isinstance(rc, int) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
