"""Command-line interface: regenerate any paper figure from the shell.

::

    python -m repro fig5                    # common-run level distribution
    python -m repro fig9 --scales 5000 20000 100000
    python -m repro fig12 --rates 0.1 1 10
    python -m repro common -n 100000        # figures 5-8 in one run
    python -m repro predict -n 100000       # closed-form predictions
    python -m repro baselines               # the intro comparison table
    python -m repro lint src/repro          # detlint static analysis

Every command prints the same table the corresponding benchmark prints
and optionally writes it as CSV (``--csv out.csv``).
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from dataclasses import replace
from typing import Iterable, List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.scalable import ScalableParams, ScalableSim
from repro.experiments.scenario import COMMON_FULL
from repro.workloads.lifetime import GnutellaLifetimeDistribution


def _emit(args, title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [list(r) for r in rows]
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
    if args.csv:
        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(headers)
            writer.writerows(rows)
        print(f"[wrote {args.csv}]")


def _params(args, **overrides) -> ScalableParams:
    base = replace(
        COMMON_FULL,
        n_target=args.nodes,
        duration_s=args.duration,
        warmup_s=args.warmup,
        seed=args.seed,
    )
    return replace(base, **overrides) if overrides else base


def _run(params: ScalableParams):
    sim = ScalableSim(
        params,
        lifetime_dist=GnutellaLifetimeDistribution(lifetime_rate=params.lifetime_rate),
    )
    return sim.run()


def cmd_common(args) -> None:
    result = _run(_params(args))
    _emit(
        args,
        f"common PeerWindow, N={args.nodes:,} (figures 5-8)",
        ["level", "nodes", "fraction", "mean_list", "min", "max",
         "error_rate", "in_bps", "out_bps"],
        [
            [r.level, r.population, round(r.fraction, 4),
             round(r.mean_list_size, 1), r.min_list_size, r.max_list_size,
             round(r.error_rate, 6), round(r.in_bps, 1), round(r.out_bps, 1)]
            for r in result.rows if r.population > 0
        ],
    )
    print(f"mean error rate: {result.mean_error_rate:.5f}; "
          f"tree depth mean {result.mean_tree_depth:.1f} max {result.max_tree_depth}; "
          f"root out-degree {result.mean_root_out_degree:.1f}")


def cmd_fig(args) -> None:
    result = _run(_params(args))
    fig = args.command
    if fig == "fig5":
        _emit(args, "figure 5 — node distribution", ["level", "nodes", "fraction"],
              [[r.level, r.population, round(r.fraction, 4)]
               for r in result.rows if r.population > 0])
        if args.chart:
            from repro.experiments.plot import level_distribution_chart

            print()
            print(level_distribution_chart(
                [(r.level, r.fraction) for r in result.rows if r.population > 0]
            ))
    elif fig == "fig6":
        _emit(args, "figure 6 — peer-list sizes", ["level", "mean", "min", "max"],
              [[r.level, round(r.mean_list_size, 1), r.min_list_size, r.max_list_size]
               for r in result.rows if r.population > 0])
    elif fig == "fig7":
        _emit(args, "figure 7 — error rates", ["level", "error_rate"],
              [[r.level, round(r.error_rate, 6)]
               for r in result.rows if r.population > 0])
    elif fig == "fig8":
        _emit(args, "figure 8 — bandwidth", ["level", "in_bps", "out_bps"],
              [[r.level, round(r.in_bps, 1), round(r.out_bps, 1)]
               for r in result.rows if r.population > 0])


def cmd_fig9_10(args) -> None:
    rows = []
    for n in args.scales:
        result = _run(_params(args, n_target=int(n)))
        fr = {r.level: r.fraction for r in result.rows if r.population > 0}
        rows.append([int(n), len(fr), round(fr.get(0, 0.0), 4),
                     round(result.mean_error_rate, 6)])
    _emit(args, "figures 9/10 — scale sweep",
          ["N", "levels", "frac_L0", "mean_error"], rows)
    if args.chart:
        from repro.experiments.plot import line_chart

        print()
        print(line_chart([(r[0], r[3]) for r in rows], title="mean error vs N"))


def cmd_fig11_12(args) -> None:
    rows = []
    for rate in args.rates:
        result = _run(_params(args, lifetime_rate=float(rate)))
        fr = {r.level: r.fraction for r in result.rows if r.population > 0}
        rows.append([rate, len(fr), round(fr.get(0, 0.0), 4),
                     round(result.mean_error_rate, 6)])
    _emit(args, "figures 11/12 — Lifetime_Rate sweep",
          ["rate", "levels", "frac_L0", "mean_error"], rows)
    if args.chart:
        from repro.experiments.plot import line_chart

        print()
        print(line_chart(
            [(r[0], r[3]) for r in rows],
            title="mean error vs Lifetime_Rate (log y — figure 12)",
            log_y=True,
        ))


def cmd_predict(args) -> None:
    from repro.experiments.predict import (
        predict_bps_per_1000_pointers,
        predict_error_rate,
        predict_level_distribution,
        predict_n_levels,
    )

    dist = predict_level_distribution(args.nodes)
    _emit(args, f"closed-form level distribution, N={args.nodes:,}",
          ["level", "fraction"],
          [[l, round(f, 4)] for l, f in sorted(dist.items())])
    print(f"predicted levels: {predict_n_levels(args.nodes)}")
    print(f"predicted mean error rate: {predict_error_rate(args.nodes):.5f}")
    print(f"input bps per 1000 pointers: {predict_bps_per_1000_pointers():.0f}")


def cmd_baselines(args) -> None:
    from repro.baselines.explicit_probe import ExplicitProbeScheme
    from repro.baselines.gossip import GossipMulticastScheme
    from repro.baselines.onehop import OneHopDHTScheme
    from repro.baselines.pushpull import PushPullGossipScheme
    from repro.baselines.random_walk import RandomWalkScheme
    from repro.core.analytic import CostModel

    pw = CostModel(mean_lifetime_s=3600.0)
    schemes = [
        ExplicitProbeScheme(mean_lifetime_s=3600.0),
        GossipMulticastScheme(redundancy=4.0),
        PushPullGossipScheme(redundancy=2.0),
        OneHopDHTScheme(n_nodes=args.nodes, mean_lifetime_s=3600.0),
        RandomWalkScheme(mean_lifetime_s=3600.0),
    ]
    budgets = [500.0, 5_000.0, 50_000.0]
    rows = []
    for w in budgets:
        rows.append([f"{w:,.0f}", round(pw.pointers_for_bandwidth(w), 1)]
                    + [round(s.pointers_for_bandwidth(w), 1) for s in schemes])
    _emit(args, f"pointers per budget (N={args.nodes:,}, L=1h)",
          ["budget_bps", "peerwindow"] + [s.name for s in schemes], rows)


def cmd_chaos(args) -> int:
    from repro.chaos import (
        BYZANTINE_SCENARIOS,
        SCENARIOS,
        ByzantineRunner,
        ChaosRunner,
    )
    from repro.obs.export import (
        prepare_output_path,
        write_chrome_trace,
        write_metrics_json,
        write_spans_jsonl,
    )

    if args.list:
        _emit(args, "chaos scenarios",
              ["scenario", "default_nodes", "description"],
              [[s.name, s.default_nodes, s.description]
               for s in SCENARIOS.values()]
              + [[s.name, s.default_nodes, s.description]
                 for s in BYZANTINE_SCENARIOS.values()])
        return 0
    runner_cls = ChaosRunner
    if args.byzantine is not None:
        runner_cls = ByzantineRunner
        scenario = BYZANTINE_SCENARIOS.get(args.byzantine)
        if scenario is None:
            print(f"unknown byzantine scenario {args.byzantine!r}; "
                  f"choose from: {', '.join(sorted(BYZANTINE_SCENARIOS))}",
                  file=sys.stderr)
            return 2
    else:
        scenario = SCENARIOS.get(args.scenario)
        if scenario is None:
            print(f"unknown scenario {args.scenario!r}; "
                  f"choose from: {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
            return 2
    # Validate output paths up front: a bad --trace/--spans/--chrome
    # destination should fail before the run, not after it.
    if args.trace:
        prepare_output_path(args.trace, what="chaos trace")
    if args.spans:
        prepare_output_path(args.spans, what="span export")
    if args.chrome:
        prepare_output_path(args.chrome, what="Chrome trace")
    if args.metrics:
        prepare_output_path(args.metrics, what="metrics JSON")
    health_spec = None
    if args.health:
        from repro.obs.health import HealthSpec

        if args.health == "default":
            n = args.nodes if args.nodes is not None else scenario.default_nodes
            if args.byzantine is not None:
                health_spec = HealthSpec.byzantine(scenario.make_config(), n)
            else:
                health_spec = HealthSpec.default(scenario.make_config(), n)
        else:
            health_spec = HealthSpec.load(args.health)
    stream = None
    if args.watch or args.snapshot_jsonl:
        from repro.obs.health import HealthSpec
        from repro.obs.stream import StreamConfig

        n = args.nodes if args.nodes is not None else scenario.default_nodes
        stream_spec = health_spec
        if stream_spec is None:
            # The dashboard always band-evaluates; without --health the
            # default spec for the scenario's config judges the stream.
            if args.byzantine is not None:
                stream_spec = HealthSpec.byzantine(scenario.make_config(), n)
            else:
                stream_spec = HealthSpec.default(scenario.make_config(), n)
        if args.snapshot_jsonl:
            prepare_output_path(args.snapshot_jsonl, what="telemetry frames")
        stream = StreamConfig(
            window=args.window,
            spec=stream_spec,
            snapshot_path=args.snapshot_jsonl,
            render=bool(args.watch),
        )
    observe = bool(args.spans or args.chrome or args.metrics)
    runner = runner_cls(
        scenario, n_nodes=args.nodes, seed=args.seed, observe=observe,
        health_spec=health_spec, stream=stream,
        detsan=True if args.detsan else None,
    )
    result = runner.run()
    _emit(
        args,
        f"chaos {result.scenario}, N={result.n_nodes}, seed={result.seed}",
        ["metric", "value"],
        [
            ["simulated_seconds", round(result.duration, 1)],
            ["faults_injected", result.faults_injected],
            ["safety_checks", result.safety_checks],
            ["convergence_checks", result.convergence_checks],
            ["live_nodes", result.live_nodes],
            ["mean_error_rate", round(result.mean_error_rate, 6)],
            ["violations", len(result.violations)],
        ] + ([["spans_recorded", len(result.spans)]] if observe else []),
    )
    if args.trace:
        path = prepare_output_path(args.trace, what="chaos trace")
        with open(path, "w") as fh:
            fh.write(result.trace)
        print(f"[wrote {path}]")
    if args.snapshot_jsonl:
        print(f"[wrote {args.snapshot_jsonl}]")
    if args.spans:
        print(f"[wrote {write_spans_jsonl(args.spans, result.spans)}]")
    if args.chrome:
        print(f"[wrote {write_chrome_trace(args.chrome, result.spans)}]")
    if args.metrics:
        meta = {
            "scenario": result.scenario,
            "n_nodes": result.n_nodes,
            "seed": result.seed,
            "duration": result.duration,
            "mean_error_rate": result.mean_error_rate,
            "config": scenario.make_config().describe(),
        }
        print(f"[wrote {write_metrics_json(args.metrics, result.metrics, meta=meta)}]")
    rc = 0
    if result.violations:
        print(f"\nFAIL: {len(result.violations)} invariant violation(s); first 20:")
        for v in result.violations[:20]:
            print("  " + v.describe())
        rc = 1
    else:
        print("\nOK: all invariants held (safety throughout; convergence after "
              "each quiescence window)")
    if runner.detsan:
        if result.detsan_violations:
            print(f"DETSAN: {len(result.detsan_violations)} sanitizer "
                  f"finding(s):")
            for line in result.detsan_violations[:20]:
                print("  " + line)
            rc = 1
        else:
            print("DETSAN: clean (no payload retention, wall-clock, or "
                  "global-RNG findings)")
    if health_spec is not None:
        breaches = [v for v in result.health_verdicts if not v.ok]
        if breaches:
            print(f"UNHEALTHY: {len(breaches)} SLO breach(es):")
            for v in breaches:
                print("  " + v.describe())
            rc = 1
        else:
            print(f"HEALTHY: {len(result.health_verdicts)} SLO verdict(s) ok")
    return rc


def cmd_obs_run(args) -> int:
    """An instrumented churn run: spans, metrics, profile, exporters."""
    from repro.core.config import ProtocolConfig
    from repro.core.protocol import PeerWindowNetwork
    from repro.net.latency import PairwiseLatencyModel
    from repro.obs.export import (
        prepare_output_path,
        profile_rows,
        write_chrome_trace,
        write_metrics_csv,
        write_metrics_json,
        write_spans_jsonl,
    )
    from repro.sim.rng import RandomStreams

    # Validate output paths up front so a bad destination fails before
    # the (possibly long) instrumented run.
    for path, what in ((args.spans, "span export"),
                       (args.chrome, "Chrome trace"),
                       (args.metrics, "metrics JSON"),
                       (args.metrics_csv, "metrics CSV")):
        if path:
            prepare_output_path(path, what=what)

    config = ProtocolConfig(id_bits=16)
    net = PeerWindowNetwork(
        config=config,
        topology=PairwiseLatencyModel(),
        master_seed=args.seed,
        parallel=args.parallel,
        observability=True,
    )
    net.seed_nodes([4000.0] * args.nodes)
    windower = None
    if args.watch or args.snapshot_jsonl:
        from repro.obs.health import HealthSpec
        from repro.obs.stream import StreamConfig

        if args.snapshot_jsonl:
            prepare_output_path(args.snapshot_jsonl, what="telemetry frames")
        windower = StreamConfig(
            window=args.window,
            spec=HealthSpec.default(config, args.nodes),
            snapshot_path=args.snapshot_jsonl,
            render=bool(args.watch),
        ).build(net)
    advance = net.run if windower is None else (
        lambda until: windower.run(until)
    )
    if args.profile:
        net.enable_profiling()
    # Deterministic churn so every instrumented path fires: a few joins
    # (handshakes + JOIN multicasts) and leaves/timeout-driven obituaries.
    churn_rng = RandomStreams(args.seed).get("obs-churn")
    keys = list(net.nodes)
    bootstrap = keys[0]
    n_churn = max(2, args.nodes // 20)
    for key in sorted(churn_rng.choice(keys[1:], size=n_churn, replace=False)):
        net.leave(int(key))
    advance(until=args.duration / 2)
    for _ in range(n_churn):
        net.add_node(4000.0, bootstrap)
    advance(until=args.duration)
    if windower is not None:
        windower.finish()
        if args.snapshot_jsonl:
            print(f"[wrote {args.snapshot_jsonl}]")

    snapshot = net.metrics_snapshot()
    spans = net.spans()
    by_name: dict = {}
    for s in spans:
        by_name[s.name] = by_name.get(s.name, 0) + 1
    _emit(
        args,
        f"obs run, N={args.nodes}, seed={args.seed}, "
        f"{'parallel=' + str(args.parallel) if args.parallel else 'sequential'}",
        ["span", "count"],
        [[name, by_name[name]] for name in sorted(by_name)],
    )
    print(f"{len(spans)} spans in {len(net.traces())} traces; "
          f"{len(snapshot['counters'])} counters, "
          f"{len(snapshot['dists'])} distributions over "
          f"{snapshot['nodes']} nodes")
    if args.spans:
        print(f"[wrote {write_spans_jsonl(args.spans, spans)}]")
    if args.chrome:
        print(f"[wrote {write_chrome_trace(args.chrome, spans)}]")
    if args.metrics:
        # meta records what produced the snapshot so `repro obs health`
        # can rebuild the matching default spec.  The execution mode
        # (parallel=N) is deliberately omitted: it is an implementation
        # detail, and including it would break the byte-identity of
        # sequential-vs-partitioned reports.
        meta = {
            "n_nodes": args.nodes,
            "seed": args.seed,
            "duration": args.duration,
            "mean_error_rate": net.mean_error_rate(),
            "config": config.describe(),
        }
        print(f"[wrote {write_metrics_json(args.metrics, snapshot, meta=meta)}]")
    if args.metrics_csv:
        print(f"[wrote {write_metrics_csv(args.metrics_csv, snapshot)}]")
    if args.profile:
        print("\n== profile ==")
        print(format_table(["phase", "calls", "seconds", "mean_us"],
                           profile_rows(net.profile_snapshot())))
    return 0


def _health_inputs(spans_path: str, metrics_path: Optional[str],
                   spec_path: Optional[str]):
    """Shared loader for ``obs analyze|health|report``: the analysis
    report, the combined signal dict, the health spec (loaded or derived
    from the run's recorded config), and the run meta."""
    from repro.core.config import ProtocolConfig
    from repro.obs.analyze import analyze_file, load_metrics
    from repro.obs.health import HealthSpec, metrics_signals

    report = analyze_file(spans_path)
    signals = dict(report.signals())
    meta: dict = {}
    config = ProtocolConfig(id_bits=16)
    if metrics_path:
        snapshot = load_metrics(metrics_path)
        raw_meta = snapshot.get("meta")
        if isinstance(raw_meta, dict):
            meta = raw_meta
        if isinstance(meta.get("config"), dict):
            config = ProtocolConfig(**meta["config"])
        signals.update(metrics_signals(snapshot, config, meta=meta))
    if spec_path:
        spec = HealthSpec.load(spec_path)
    else:
        spec = HealthSpec.default(config, int(meta.get("n_nodes", report.nodes)))
    return report, signals, spec, meta


def cmd_obs_analyze(args) -> int:
    """Reconstruct span trees from a JSONL export and print aggregates."""
    import json as _json

    from repro.paths import prepare_output_path

    if args.json:
        prepare_output_path(args.json, what="analysis JSON")
    report, signals, _spec, _meta = _health_inputs(
        args.spans, args.metrics, None
    )
    doc = report.to_dict()
    m = doc["multicast"]
    _emit(
        args,
        f"span analytics: {args.spans}",
        ["metric", "value"],
        [
            ["spans", doc["spans_total"]],
            ["lines_skipped", doc["lines_skipped"]],
            ["nodes", doc["nodes"]],
            ["mcast.trees", m["trees"]],
            ["mcast.tree_completeness", round(m["tree_completeness"], 6)],
            ["mcast.orphan_hops", m["orphan_hops"]],
            ["mcast.max_depth", m["max_depth"]],
            ["mcast.mean_fanout", round(m["fanout"]["mean"], 3)],
            ["mcast.mean_latency_s", round(m["completion_latency"]["mean"], 3)],
            ["mcast.redirect_rate", round(m["redirect_rate"], 6)],
            ["join.ok", doc["join"]["ok"]],
            ["join.failed", doc["join"]["failed"]],
            ["join.warmup_mean_s", round(doc["join"]["warmup"]["mean"], 3)],
            ["probe.count", doc["probe"]["count"]],
            ["probe.timeout_rate", round(doc["probe"]["timeout_rate"], 6)],
            ["obituary.false_positives", doc["obituaries"]["false_positives"]],
        ],
    )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(_json.dumps(doc, sort_keys=True, indent=2) + "\n")
        print(f"[wrote {args.json}]")
    return 0


def cmd_obs_health(args) -> int:
    """Judge a recorded run against a health spec; exit 1 on breach."""
    from repro.obs.health import evaluate

    _report, signals, spec, _meta = _health_inputs(
        args.spans, args.metrics, args.spec
    )
    verdicts = evaluate(spec, signals)
    _emit(
        args,
        f"health: {args.spans} vs spec '{spec.name}'",
        ["slo", "value", "lo", "hi", "ok"],
        [
            [v.slo, round(v.value, 6),
             "-" if v.lo is None else v.lo,
             "-" if v.hi is None else v.hi,
             "ok" if v.ok else "BREACH"]
            for v in verdicts
        ],
    )
    breaches = [v for v in verdicts if not v.ok]
    if breaches:
        print(f"\nUNHEALTHY: {len(breaches)} SLO breach(es)")
        for v in breaches:
            print("  " + v.describe())
        return 1
    print(f"\nHEALTHY: {len(verdicts)} SLO(s) ok")
    return 0


def cmd_obs_report(args) -> int:
    """The full health report: markdown to stdout/--out, JSON via --json."""
    from repro.obs.health import evaluate
    from repro.obs.report import build_report, render_json, render_markdown
    from repro.paths import prepare_output_path

    for path, what in ((args.out, "markdown report"),
                       (args.json, "JSON report")):
        if path:
            prepare_output_path(path, what=what)
    report, signals, spec, meta = _health_inputs(
        args.spans, args.metrics, args.spec
    )
    verdicts = evaluate(spec, signals)
    doc = build_report(report, verdicts, signals=signals, meta=meta)
    markdown = render_markdown(doc)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(markdown)
        print(f"[wrote {args.out}]")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(render_json(doc))
        print(f"[wrote {args.json}]")
    if not args.out and not args.json:
        print(markdown, end="")
    return 0 if doc["healthy"] else 1


def cmd_watch(args) -> int:
    """Render telemetry frames from a --snapshot-jsonl file."""
    from repro.obs.dashboard import watch_file

    return watch_file(
        args.frames,
        follow=args.follow,
        interval=args.interval,
        ansi=False if args.plain else None,
        verdict_exit=not args.no_verdict_exit,
    )


def cmd_compare(args) -> int:
    """Protocol tournament: every contestant over identical workloads."""
    import os

    from repro.compare import (
        TournamentConfig,
        contestant_names,
        render_json,
        render_markdown,
        run_tournament,
    )

    known = contestant_names()
    if args.list:
        _emit(args, "tournament contestants", ["contestant"],
              [[name] for name in known])
        return 0
    names = tuple(args.contestants) if args.contestants else tuple(known)
    unknown = [n for n in names if n not in known]
    if unknown:
        print(
            f"error: unknown contestant(s): {', '.join(unknown)} "
            f"(known: {', '.join(known)})",
            file=sys.stderr,
        )
        return 2
    cfg = TournamentConfig(
        contestants=names,
        n_nodes=args.nodes,
        duration=args.duration,
        window=args.window,
        seeds=tuple(range(args.seed, args.seed + args.seeds)),
        parallel=args.parallel,
    )
    on_window = None
    if args.watch:
        from repro.obs.dashboard import ComparisonDashboard

        on_window = ComparisonDashboard(ansi=False if args.plain else None)
    if args.frames_dir:
        os.makedirs(args.frames_dir, exist_ok=True)
    doc = run_tournament(cfg, frames_dir=args.frames_dir, on_window=on_window)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(render_markdown(doc))
        print(f"[wrote {args.out}]")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(render_json(doc))
        print(f"[wrote {args.json}]")
    if not args.out and not args.json:
        print(render_markdown(doc), end="")
    return 0 if doc["champion_healthy"] else 1


def cmd_obs_render(args) -> int:
    """Render recorded frames (and optionally spans) to static HTML."""
    from repro.obs.analyze import load_span_lines
    from repro.obs.export import prepare_output_path
    from repro.obs.render_html import build_html
    from repro.obs.stream import load_frames

    with open(args.frames) as fh:
        frames, _, skipped = load_frames(fh.read().splitlines())
    spans = None
    if args.spans:
        with open(args.spans) as fh:
            spans, _, span_skipped = load_span_lines(fh.read().splitlines())
        skipped += span_skipped
    page = build_html(
        frames,
        spans=spans,
        title=args.title,
        lines_skipped=skipped,
        tree_limit=args.trees,
    )
    prepare_output_path(args.out, what="HTML page")
    with open(args.out, "w") as fh:
        fh.write(page)
    print(f"[wrote {args.out}]")
    return 0


def cmd_obs_trees(args) -> int:
    """Print reconstructed multicast tree shapes from a span JSONL."""
    from repro.obs.analyze import load_span_lines
    from repro.obs.dashboard import render_mcast_trees

    with open(args.spans) as fh:
        spans, _, skipped = load_span_lines(fh.read().splitlines())
    print(render_mcast_trees(spans, limit=args.limit, max_nodes=args.max_nodes))
    if skipped:
        print(
            f"WARNING: skipped {skipped} unreadable line(s) in {args.spans}",
            file=sys.stderr,
        )
    return 0


def cmd_live_node(args) -> int:
    """One live node process (``seed`` is a node with no --via)."""
    import asyncio

    from repro.live.clock import wall_epoch
    from repro.live.node import LiveNodeSpec, run_node

    via = getattr(args, "via", None)
    spec = LiveNodeSpec(
        host=args.host,
        port=args.port,
        index=args.index,
        n_nodes=args.swarm_size,
        master_seed=args.seed,
        epoch=float(args.epoch) if args.epoch is not None else wall_epoch(),
        duration=args.duration,
        seed_address=via,
        join_at=args.join_at,
        settle=args.settle,
        request_retries=args.request_retries,
        telemetry_window=args.telemetry_window,
    )
    result = asyncio.run(run_node(spec, args.out))
    role = "seed" if via is None else f"joined={result['joined']}"
    print(
        f"live node {spec.address} ({role}) level={result['level']} "
        f"sent={result['transport']['sent']} "
        f"delivered={result['transport']['delivered']}"
    )
    return 0 if result["joined"] else 1


def cmd_live_swarm(args) -> int:
    """Launch an N-process localhost swarm, merge its exports, and judge
    (optionally against a sim counterpart of the same (n, config))."""
    from repro.live.swarm import fidelity_rows, launch_swarm, run_sim_counterpart
    from repro.obs.health import evaluate

    def judge(label: str, spans_path: str, metrics_path: str):
        report, signals, spec, _meta = _health_inputs(
            spans_path, metrics_path, args.spec
        )
        verdicts = evaluate(spec, signals)
        _emit(
            args,
            f"health ({label}): {spans_path} vs spec '{spec.name}'",
            ["slo", "value", "lo", "hi", "ok"],
            [
                [v.slo, round(v.value, 6),
                 "-" if v.lo is None else v.lo,
                 "-" if v.hi is None else v.hi,
                 "ok" if v.ok else "BREACH"]
                for v in verdicts
            ],
        )
        breaches = [v for v in verdicts if not v.ok]
        for v in breaches:
            print("  " + v.describe())
        return signals, not breaches

    telemetry_window = args.telemetry_window
    if args.watch and telemetry_window <= 0:
        telemetry_window = 2.0
    summary = launch_swarm(
        n=args.nodes,
        duration=args.duration,
        outdir=args.out,
        base_port=args.base_port,
        master_seed=args.seed,
        stagger=args.stagger,
        settle=args.settle,
        request_retries=args.request_retries,
        telemetry_window=telemetry_window,
        watch=args.watch,
    )
    print(
        f"swarm: {summary['joined']}/{summary['n']} nodes up; "
        f"spans={summary['spans']} metrics={summary['metrics']}"
    )
    if summary.get("telemetry"):
        print(f"telemetry frames merged to {summary['telemetry']}")
    rc = 0
    if summary["joined"] < summary["n"]:
        print(f"WARNING: {summary['n'] - summary['joined']} node(s) failed to join")
        rc = 1
    live_signals = None
    if args.health or args.compare_sim:
        live_signals, healthy = judge("live", summary["spans"], summary["metrics"])
        if not healthy:
            rc = 1
    if args.compare_sim:
        sim_dir = os.path.join(args.out, "sim")
        sim = run_sim_counterpart(
            n=args.nodes,
            duration=args.duration,
            outdir=sim_dir,
            master_seed=args.seed,
            stagger=args.stagger,
        )
        sim_signals, healthy = judge("sim", sim["spans"], sim["metrics"])
        if not healthy:
            rc = 1
        _emit(
            args,
            f"sim-vs-real fidelity, n={args.nodes}, seed={args.seed}",
            ["signal", "sim", "live"],
            fidelity_rows(sim_signals, live_signals),
        )
    return rc


def _changed_files(ref: str, paths) -> "Optional[list]":
    """``.py`` files changed versus ``ref`` (per ``git diff``) that lie
    under the requested lint paths.  None on git failure."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "diff", "--name-only", "-z", ref, "--"],
            capture_output=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = ""
        if isinstance(exc, subprocess.CalledProcessError):
            detail = (exc.stderr or b"").decode(errors="replace").strip()
        print(f"cannot diff against {ref!r}: {detail or exc}", file=sys.stderr)
        return None
    wanted = [os.path.normpath(p) for p in paths]
    files = []
    for name in out.stdout.decode(errors="replace").split("\0"):
        if not name or not name.endswith(".py"):
            continue
        norm = os.path.normpath(name)
        in_scope = any(
            norm == w or norm.startswith(w + os.sep) for w in wanted
        )
        # Deleted files show up in the diff but have nothing to lint.
        if in_scope and os.path.exists(norm):
            files.append(norm)
    return sorted(files)


def cmd_lint(args) -> int:
    """detlint: the determinism & LP-isolation static analyzer."""
    import json as _json

    from repro.analysis import Baseline, all_rules, run_lint
    from repro.paths import prepare_output_path

    rules = all_rules()
    if args.rules:
        _emit(args, "detlint rules", ["rule", "title"],
              [[r.id, r.title] for r in rules])
        if args.explain:
            for r in rules:
                print(f"\n{r.id} — {r.title}\n  {r.rationale}")
        return 0
    # Validate report/baseline destinations before the (possibly long) walk.
    if args.report:
        prepare_output_path(args.report, what="lint report")
    if args.write_baseline:
        prepare_output_path(args.baseline, what="detlint baseline")

    paths = args.paths or ["src/repro"]
    if args.changed:
        changed = _changed_files(args.changed, paths)
        if changed is None:
            return 2
        if not changed:
            print(f"[no .py files under {', '.join(paths)} changed vs "
                  f"{args.changed}]")
            return 0
        print(f"[incremental: {len(changed)} file(s) changed vs "
              f"{args.changed}; per-file rules only — interprocedural "
              f"checks need the whole tree]")
        findings = run_lint(changed, rules=rules, project=False)
    else:
        findings = run_lint(paths, rules=rules)

    if args.write_baseline:
        baseline = Baseline.from_findings(findings)
        print(f"[wrote {baseline.save(args.baseline)}: "
              f"{len(findings)} grandfathered finding(s)]")
        return 0

    baseline = Baseline()
    if args.baseline and os.path.exists(args.baseline):
        baseline = Baseline.load(args.baseline)
    new, grandfathered = baseline.split(findings)

    if args.format == "json":
        doc = {
            "findings": [f.to_dict() for f in new],
            "baselined": len(grandfathered),
            "checked_rules": [r.id for r in rules],
        }
        text = _json.dumps(doc, indent=2, sort_keys=True) + "\n"
        if args.report:
            with open(args.report, "w") as fh:
                fh.write(text)
            print(f"[wrote {args.report}]")
        else:
            print(text, end="")
    else:
        lines = [f.describe() for f in new]
        summary = (
            f"{len(new)} finding(s)"
            + (f", {len(grandfathered)} baselined" if grandfathered else "")
            + f" across {len(rules)} rules"
        )
        if args.report:
            with open(args.report, "w") as fh:
                fh.write("\n".join(lines + [summary]) + "\n")
            print(f"[wrote {args.report}]")
        else:
            for line in lines:
                print(line)
            print(summary)
    return 1 if new else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PeerWindow (ICPP 2005) reproduction — regenerate any paper figure.",
    )
    common_opts = argparse.ArgumentParser(add_help=False)
    common_opts.add_argument("--csv", help="also write the table as CSV")
    common_opts.add_argument("--chart", action="store_true",
                             help="also draw a terminal chart")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sim_args(p):
        p.add_argument("-n", "--nodes", type=int, default=20_000,
                       help="system scale (paper: 100000)")
        p.add_argument("--duration", type=float, default=1200.0,
                       help="measured seconds after warm-up")
        p.add_argument("--warmup", type=float, default=400.0)
        p.add_argument("--seed", type=int, default=1)

    for name, fn in (
        ("common", cmd_common),
        ("fig5", cmd_fig), ("fig6", cmd_fig), ("fig7", cmd_fig), ("fig8", cmd_fig),
    ):
        p = sub.add_parser(name, parents=[common_opts])
        add_sim_args(p)
        p.set_defaults(func=fn)

    p9 = sub.add_parser("fig9", parents=[common_opts], help="scale sweep (also fig10 error column)")
    add_sim_args(p9)
    p9.add_argument("--scales", nargs="+", type=int,
                    default=[5_000, 20_000, 100_000])
    p9.set_defaults(func=cmd_fig9_10)

    p11 = sub.add_parser("fig11", parents=[common_opts], help="Lifetime_Rate sweep (also fig12 error column)")
    add_sim_args(p11)
    p11.add_argument("--rates", nargs="+", type=float,
                     default=[0.1, 0.5, 1.0, 2.0, 10.0])
    p11.set_defaults(func=cmd_fig11_12)

    pp = sub.add_parser("predict", parents=[common_opts], help="closed-form predictions (no simulation)")
    pp.add_argument("-n", "--nodes", type=int, default=100_000)
    pp.set_defaults(func=cmd_predict)

    pb = sub.add_parser("baselines", parents=[common_opts], help="the intro comparison table")
    pb.add_argument("-n", "--nodes", type=int, default=100_000)
    pb.set_defaults(func=cmd_baselines)

    pch = sub.add_parser("chaos", parents=[common_opts],
                         help="deterministic fault-injection run with live "
                              "invariant checking")
    pch.add_argument("--scenario", default="smoke",
                     help="scenario name (--list shows all)")
    pch.add_argument("--byzantine", metavar="SCENARIO", default=None,
                     help="run an adversarial scenario (DESIGN §16) with the "
                          "byzantine runner instead of --scenario; 'default' "
                          "health uses the byzantine SLO bands")
    pch.add_argument("-n", "--nodes", type=int, default=None,
                     help="population (default: the scenario's)")
    pch.add_argument("--seed", type=int, default=0,
                     help="master seed; same seed => byte-identical trace")
    pch.add_argument("--trace", help="write the deterministic fault/state trace here")
    pch.add_argument("--spans", help="record observability spans and write them "
                                     "as JSONL here (enables tracing)")
    pch.add_argument("--chrome", help="write a Chrome trace_event file here "
                                      "(open in about://tracing; enables tracing)")
    pch.add_argument("--health", metavar="SPEC",
                     help="evaluate SLOs live + post-hoc and fail (exit 1) "
                          "on breach; SPEC is a HealthSpec JSON path or "
                          "'default' (derived from the scenario config)")
    pch.add_argument("--metrics", help="write the run's metrics snapshot "
                                       "as JSON here (enables tracing)")
    pch.add_argument("--watch", action="store_true",
                     help="render the live telemetry dashboard while the "
                          "scenario runs (enables tracing)")
    pch.add_argument("--snapshot-jsonl", dest="snapshot_jsonl", default=None,
                     help="write deterministic per-window telemetry frames "
                          "as JSONL here (enables tracing)")
    pch.add_argument("--window", type=float, default=15.0,
                     help="telemetry window width in simulated seconds")
    pch.add_argument("--detsan", action="store_true",
                     help="run under the DetSan runtime sanitizer (payload "
                          "retention + clock/RNG tripwires; exit 1 on any "
                          "finding; REPRO_DETSAN=1 does the same)")
    pch.add_argument("--list", action="store_true", help="list scenarios and exit")
    pch.set_defaults(func=cmd_chaos)

    pobs = sub.add_parser("obs",
                          help="observability: instrumented runs, span-tree "
                               "analytics, SLO health checks, reports")
    obs_sub = pobs.add_subparsers(dest="obs_command", required=True)

    porun = obs_sub.add_parser(
        "run", parents=[common_opts],
        help="instrumented churn run: span tree, metrics registry, "
             "exporters, profiling")
    porun.add_argument("-n", "--nodes", type=int, default=200)
    porun.add_argument("--duration", type=float, default=300.0,
                       help="simulated seconds")
    porun.add_argument("--seed", type=int, default=1)
    porun.add_argument("--parallel", type=int, default=None,
                       help="run on N logical processes (byte-identical output)")
    porun.add_argument("--spans", help="write spans as JSONL here")
    porun.add_argument("--chrome", help="write a Chrome trace_event file here")
    porun.add_argument("--metrics", help="write the metrics snapshot as JSON here")
    porun.add_argument("--metrics-csv", dest="metrics_csv",
                       help="write the metrics snapshot as CSV here")
    porun.add_argument("--profile", action="store_true",
                       help="attach wall-clock phase profilers and print them")
    porun.add_argument("--watch", action="store_true",
                       help="render the live telemetry dashboard during the run")
    porun.add_argument("--snapshot-jsonl", dest="snapshot_jsonl", default=None,
                       help="write deterministic per-window telemetry frames "
                            "as JSONL here (byte-identical across --parallel)")
    porun.add_argument("--window", type=float, default=15.0,
                       help="telemetry window width in simulated seconds")
    porun.set_defaults(func=cmd_obs_run)

    poana = obs_sub.add_parser(
        "analyze", parents=[common_opts],
        help="reconstruct multicast/join/probe trees from a span JSONL "
             "export and print per-operation aggregates")
    poana.add_argument("spans", help="span JSONL file (from `obs run --spans`)")
    poana.add_argument("--metrics", help="metrics JSON from the same run")
    poana.add_argument("--json", help="write the full analysis document here")
    poana.set_defaults(func=cmd_obs_analyze)

    pohealth = obs_sub.add_parser(
        "health", parents=[common_opts],
        help="judge a recorded run against paper-derived SLOs "
             "(exit 1 on breach)")
    pohealth.add_argument("spans", help="span JSONL file")
    pohealth.add_argument("--metrics", help="metrics JSON from the same run "
                                            "(enables bandwidth/error SLOs)")
    pohealth.add_argument("--spec", help="HealthSpec JSON (default: derived "
                                         "from the run's recorded config)")
    pohealth.set_defaults(func=cmd_obs_health)

    porep = obs_sub.add_parser(
        "report", parents=[common_opts],
        help="full markdown/JSON health report (exit 1 when unhealthy)")
    porep.add_argument("spans", help="span JSONL file")
    porep.add_argument("--metrics", help="metrics JSON from the same run")
    porep.add_argument("--spec", help="HealthSpec JSON")
    porep.add_argument("--out", help="write markdown here (default: stdout)")
    porep.add_argument("--json", help="write the report document as JSON here")
    porep.set_defaults(func=cmd_obs_report)

    porend = obs_sub.add_parser(
        "render", parents=[common_opts],
        help="render recorded telemetry to one self-contained static HTML "
             "page (timeline, level histogram, tree shapes; no JS, no "
             "external assets)")
    porend.add_argument("frames", help="telemetry frame JSONL file")
    porend.add_argument("--spans",
                        help="span JSONL from the same run (adds multicast "
                             "tree shapes)")
    porend.add_argument("--out", default="telemetry.html",
                        help="output HTML path")
    porend.add_argument("--title", default="repro telemetry")
    porend.add_argument("--trees", type=int, default=3,
                        help="how many multicast trees to render")
    porend.set_defaults(func=cmd_obs_render)

    potree = obs_sub.add_parser(
        "trees", parents=[common_opts],
        help="print reconstructed multicast tree shapes (ASCII) from a "
             "span JSONL export")
    potree.add_argument("spans", help="span JSONL file")
    potree.add_argument("--limit", type=int, default=3,
                        help="largest-N trees to render")
    potree.add_argument("--max-nodes", type=int, default=48,
                        help="span budget per tree before truncation")
    potree.set_defaults(func=cmd_obs_trees)

    pwatch = sub.add_parser(
        "watch",
        help="render telemetry frames from a --snapshot-jsonl file "
             "(optionally tailing a still-running producer)")
    pwatch.add_argument("frames", help="telemetry frame JSONL file")
    pwatch.add_argument("--follow", action="store_true",
                        help="tail the file until a final frame arrives")
    pwatch.add_argument("--interval", type=float, default=0.5,
                        help="poll interval in wall seconds with --follow")
    pwatch.add_argument("--plain", action="store_true",
                        help="never repaint in place, even on a TTY")
    pwatch.add_argument("--no-verdict-exit", action="store_true",
                        help="exit 0 even when the last frame carries "
                             "breached SLO verdicts")
    pwatch.set_defaults(func=cmd_watch)

    pcmp = sub.add_parser(
        "compare", parents=[common_opts],
        help="protocol tournament: run PeerWindow and the baselines over "
             "identical seeded workloads and emit one scorecard "
             "(exit 1 when the champion breaches its bands)")
    pcmp.add_argument("--contestants", nargs="+", default=None,
                      help="contestant names (--list shows all; "
                           "default: every registered protocol)")
    pcmp.add_argument("-n", "--nodes", type=int, default=40,
                      help="population per contestant")
    pcmp.add_argument("--duration", type=float, default=240.0,
                      help="simulated seconds per seed")
    pcmp.add_argument("--window", type=float, default=30.0,
                      help="telemetry window width in simulated seconds")
    pcmp.add_argument("--seed", type=int, default=0, help="first seed")
    pcmp.add_argument("--seeds", type=int, default=1,
                      help="number of consecutive seeds to run")
    pcmp.add_argument("--parallel", type=int, default=None,
                      help="partitioned engine LPs for the champion "
                           "(scorecard is byte-identical either way)")
    pcmp.add_argument("--out", help="write the markdown scorecard here")
    pcmp.add_argument("--json", help="write the JSON scorecard here")
    pcmp.add_argument("--frames-dir",
                      help="also write per-contestant telemetry frame JSONL "
                           "files into this directory")
    pcmp.add_argument("--watch", action="store_true",
                      help="render the contestants side by side after every "
                           "lockstep window")
    pcmp.add_argument("--plain", action="store_true",
                      help="with --watch: never repaint in place")
    pcmp.add_argument("--list", action="store_true",
                      help="list contestants and exit")
    pcmp.set_defaults(func=cmd_compare)

    plint = sub.add_parser(
        "lint", parents=[common_opts],
        help="detlint: statically check the determinism & LP-isolation "
             "contracts (DET*/ISO*/OBS* rules)")
    plint.add_argument("paths", nargs="*",
                       help="files or directories (default: src/repro)")
    plint.add_argument("--format", choices=("text", "json"), default="text",
                       help="finding output format")
    plint.add_argument("--baseline", default="detlint-baseline.json",
                       help="baseline file of grandfathered findings "
                            "(missing file = empty baseline)")
    plint.add_argument("--write-baseline", action="store_true",
                       help="write current findings to the baseline file "
                            "and exit 0")
    plint.add_argument("--report", help="write findings to this file "
                                        "instead of stdout")
    plint.add_argument("--changed", metavar="GIT_REF",
                       help="incremental mode: lint only .py files changed "
                            "versus this git ref (per-file rules only; the "
                            "interprocedural pass needs the whole tree)")
    plint.add_argument("--rules", action="store_true",
                       help="list the rule catalog and exit")
    plint.add_argument("--explain", action="store_true",
                       help="with --rules: include each rule's rationale")
    plint.set_defaults(func=cmd_lint)

    plive = sub.add_parser(
        "live",
        help="realtime backend: the protocol over asyncio/UDP on localhost")
    live_sub = plive.add_subparsers(dest="live_command", required=True)

    live_node_opts = argparse.ArgumentParser(add_help=False)
    live_node_opts.add_argument("--host", default="127.0.0.1")
    live_node_opts.add_argument("--port", type=int, required=True,
                                help="UDP port to bind (the node's address)")
    live_node_opts.add_argument("--index", type=int, default=0,
                                help="node index (seeds this node's RNG streams)")
    live_node_opts.add_argument("--swarm-size", type=int, default=1,
                                help="total nodes in the swarm this belongs to")
    live_node_opts.add_argument("--seed", type=int, default=0,
                                help="master seed shared by the whole swarm")
    live_node_opts.add_argument("--epoch", default=None,
                                help="shared unix-time epoch (t=0 of the run); "
                                     "default: now")
    live_node_opts.add_argument("--duration", type=float, default=30.0,
                                help="epoch-relative lifetime in seconds")
    live_node_opts.add_argument("--join-at", type=float, default=0.0,
                                help="epoch-relative join time")
    live_node_opts.add_argument("--settle", type=float, default=4.0,
                                help="quiet window before export")
    live_node_opts.add_argument("--request-retries", type=int, default=1,
                                help="datagram retransmits per request window")
    live_node_opts.add_argument("--telemetry-window", dest="telemetry_window",
                                type=float, default=0.0,
                                help="write a telemetry frame sidecar "
                                     "(telemetry_<port>.jsonl) with this "
                                     "window width in seconds (0 = off)")
    live_node_opts.add_argument("--out", default="live-out",
                                help="directory for span/result exports")

    pseed = live_sub.add_parser(
        "seed", parents=[live_node_opts],
        help="run the bootstrap (first) node of a live system")
    pseed.set_defaults(func=cmd_live_node, via=None)

    pnode = live_sub.add_parser(
        "node", parents=[live_node_opts],
        help="run one node; joins through --via if given")
    pnode.add_argument("--via", default=None,
                       help="bootstrap address host:port (omit = seed)")
    pnode.set_defaults(func=cmd_live_node)

    pswarm = live_sub.add_parser(
        "swarm", parents=[common_opts],
        help="launch an N-process localhost swarm and merge its exports")
    pswarm.add_argument("-n", "--nodes", type=int, default=25)
    pswarm.add_argument("--duration", type=float, default=30.0)
    pswarm.add_argument("--seed", type=int, default=0)
    pswarm.add_argument("--base-port", type=int, default=47000)
    pswarm.add_argument("--stagger", type=float, default=0.4,
                        help="seconds between successive joins")
    pswarm.add_argument("--settle", type=float, default=4.0)
    pswarm.add_argument("--request-retries", type=int, default=1)
    pswarm.add_argument("--out", default="live-out",
                        help="output directory (merged spans.jsonl/metrics.json)")
    pswarm.add_argument("--health", action="store_true",
                        help="judge the merged run against the default "
                             "HealthSpec (exit 1 on breach)")
    pswarm.add_argument("--compare-sim", action="store_true",
                        help="also run the sequential-sim counterpart of the "
                             "same (n, config) and print the fidelity table")
    pswarm.add_argument("--spec", help="health spec JSON (default: derived)")
    pswarm.add_argument("--watch", action="store_true",
                        help="render merged telemetry frames while the swarm "
                             "runs (implies --telemetry-window 2.0)")
    pswarm.add_argument("--telemetry-window", dest="telemetry_window",
                        type=float, default=0.0,
                        help="per-node telemetry frame window in seconds "
                             "(0 = no telemetry sidecars)")
    pswarm.set_defaults(func=cmd_live_swarm)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.obs.analyze import SchemaError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        rc = args.func(args)
    except (OSError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return rc if isinstance(rc, int) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
