"""Wire-contract rule: WIRE001 verifies message-construction sites
against the versioned body schemas in :mod:`repro.kernel.schema`.

The codec round-trip tests catch a malformed payload only when a test
actually serializes one; a construction site in a rarely-exercised
service branch can ship a tuple with the fields swapped and fail weeks
later on the realtime backend.  This rule checks every ``Message(...)``
and ``.make_reply(...)`` call whose kind is a string literal against the
schema registry — statically, for all 17 kinds, without importing any
protocol code (``repro.kernel.schema`` is pure data by design).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import FileContext, Rule, register
from repro.kernel.schema import BODY_SCHEMAS, BodySchema

#: Keyword arguments the Message dataclass accepts.
MESSAGE_KWARGS = {
    "src", "dst", "kind", "payload", "size_bits", "msg_id", "reply_to",
    "trace",
}
#: Keyword arguments Message.make_reply accepts.
MAKE_REPLY_KWARGS = {"kind", "payload", "size_bits"}

#: Sentinel: site passes the payload but we cannot judge its shape.
_UNKNOWN = object()


def _literal_kind(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register
class WireSchemaRule(Rule):
    """WIRE001 — message construction matches the wire body schema."""

    id = "WIRE001"
    title = "message construction violates the wire body schema"
    rationale = (
        "Every payload shape is fixed by repro.kernel.schema (and "
        "enforced on the realtime wire by repro.kernel.codec).  A "
        "construction site with a missing, extra, or misshapen payload "
        "encodes fine in the DES backends (payloads pass by reference) "
        "and only explodes when the codec first serializes it; checking "
        "the site against the schema catches the drift at lint time."
    )

    def check(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "Message":
                self._check_message(ctx, node)
            elif isinstance(func, ast.Attribute):
                if func.attr == "Message":
                    self._check_message(ctx, node)
                elif func.attr == "make_reply":
                    self._check_make_reply(ctx, node)

    # -- construction forms -------------------------------------------------

    def _check_message(self, ctx: FileContext, node: ast.Call) -> None:
        kind_expr = self._arg(node, 2, "kind")
        self._check_kwargs(ctx, node, MESSAGE_KWARGS, "Message")
        kind = _literal_kind(kind_expr)
        if kind is None:
            return  # dynamic kind: codec enforces it at runtime
        payload = self._arg(node, 3, "payload")
        self._check_payload(ctx, node, kind, payload)

    def _check_make_reply(self, ctx: FileContext, node: ast.Call) -> None:
        kind_expr = self._arg(node, 0, "kind")
        self._check_kwargs(ctx, node, MAKE_REPLY_KWARGS, "make_reply")
        kind = _literal_kind(kind_expr)
        if kind is None:
            return
        payload = self._arg(node, 1, "payload")
        self._check_payload(ctx, node, kind, payload)

    @staticmethod
    def _arg(node: ast.Call, index: int, name: str) -> Optional[ast.expr]:
        """The expression bound to a parameter, positionally or by
        keyword; None when the site omits it, ``_UNKNOWN``-free (a
        ``*args`` splat disables positional mapping)."""
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        if any(isinstance(a, ast.Starred) for a in node.args):
            return None
        if index < len(node.args):
            return node.args[index]
        return None

    # -- checks -------------------------------------------------------------

    def _check_kwargs(
        self, ctx: FileContext, node: ast.Call, valid: set, what: str
    ) -> None:
        for kw in node.keywords:
            if kw.arg is not None and kw.arg not in valid:
                ctx.report(
                    self,
                    node,
                    f"{what}() has no parameter {kw.arg!r} — misnamed "
                    f"field? valid: {', '.join(sorted(valid))}",
                )

    def _check_payload(
        self,
        ctx: FileContext,
        node: ast.Call,
        kind: str,
        payload: Optional[ast.expr],
    ) -> None:
        schema = BODY_SCHEMAS.get(kind)
        if schema is None:
            ctx.report(
                self,
                node,
                f"unknown message kind {kind!r} — not one of the "
                f"{len(BODY_SCHEMAS)} kinds in repro.kernel.schema",
            )
            return
        if schema.category == "none":
            if payload is not None and not _is_none(payload):
                ctx.report(
                    self,
                    node,
                    f"message kind {kind!r} carries no body, but this site "
                    f"passes a payload (extra field) — schema: None",
                )
            return
        if schema.requires_payload and (payload is None or _is_none(payload)):
            ctx.report(
                self,
                node,
                f"message kind {kind!r} requires a payload "
                f"({schema.describe()}), but this site passes none "
                f"(missing field)",
            )
            return
        if payload is None:
            return
        self._check_shape(ctx, node, schema, payload)

    def _check_shape(
        self,
        ctx: FileContext,
        node: ast.Call,
        schema: BodySchema,
        payload: ast.expr,
    ) -> None:
        is_tuple = isinstance(payload, ast.Tuple)
        if schema.category == "tuple":
            if is_tuple and len(payload.elts) != schema.arity:
                ctx.report(
                    self,
                    node,
                    f"message kind {schema.kind!r} payload needs exactly "
                    f"{schema.arity} fields {schema.describe()}, this site "
                    f"builds a {len(payload.elts)}-tuple",
                )
            return
        if schema.category == "node_id_or_nonce":
            if is_tuple and len(payload.elts) != 2:
                ctx.report(
                    self,
                    node,
                    f"message kind {schema.kind!r} payload must be a "
                    f"NodeId or a (NodeId, nonce) pair, this site builds "
                    f"a {len(payload.elts)}-tuple",
                )
            return
        if is_tuple:
            ctx.report(
                self,
                node,
                f"message kind {schema.kind!r} payload is a single "
                f"{schema.describe()}, this site builds a "
                f"{len(payload.elts)}-tuple",
            )
