"""LP-isolation rules: ISO001 (payload aliasing) and ISO002 (peer state
reached around the NodeContext).

Both rules encode the lesson of the PR 2 chaos findings: with an
in-memory transport, "received" objects are often the *sender's live
objects*, so storing one without copying creates a covert channel that
couples two logical processes outside the message fabric — the
shared-Pointer bug that broke sequential/partitioned equivalence.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Union

from repro.analysis.core import FileContext, Rule, register

#: Parameter names treated as an incoming wire message (taint source is
#: ``<param>.payload``).
MESSAGE_PARAMS = {"msg", "message", "reply", "request"}
#: Parameter names that *are* an already-extracted payload.
PAYLOAD_PARAMS = {"payload"}
#: Annotation names implying a message parameter.
MESSAGE_ANNOTATIONS = {"Message"}

#: ctx-rooted installer methods that must only receive copies.
ALIAS_SINK_METHODS = {
    "add",
    "install",
    "append",
    "extend",
    "insert",
    "update",
    "setdefault",
    "push",
}
#: Installers documented to store copies internally (TopNodeList.merge,
#: CrossPartTopList.merge) — passing a received object is safe.
COPYING_SINK_METHODS = {"merge"}

#: Calls that produce an independent object from their argument.
_SANITIZING_CALLS = {"copy", "deepcopy", "__deepcopy__", "replace", "fresh_copy"}
#: Shallow containers: a new list/tuple still aliases its elements.
_SHALLOW_WRAPPERS = {"list", "tuple", "reversed", "sorted", "iter"}

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1]
    return None


def _is_sanitizing_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _SANITIZING_CALLS:
        return True
    if isinstance(func, ast.Name):
        if func.id in _SANITIZING_CALLS:
            return True
        # Constructor call (Pointer(...), EventRecord(...)): builds a
        # fresh object field-by-field.
        if func.id[:1].isupper():
            return True
    if isinstance(func, ast.Attribute) and func.attr[:1].isupper():
        return True
    return False


def _root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an Attribute/Subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_ctx_rooted(node: ast.AST) -> bool:
    """Is this expression rooted at long-lived node state (``ctx.*``,
    ``self.ctx.*``, or ``self.*``)?"""
    root = _root_name(node)
    if root == "ctx":
        return True
    if root == "self":
        return True
    return False


class _PayloadTaint(ast.NodeVisitor):
    """Per-function forward taint pass (no fixpoint: one top-to-bottom
    sweep, which matches how handler code reads)."""

    def __init__(self, rule: "PayloadAliasRule", ctx: FileContext, fn: FuncDef):
        self.rule = rule
        self.ctx = ctx
        self.fn = fn
        self.msg_params: Set[str] = set()
        self.tainted: Set[str] = set()
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            ann = _annotation_name(arg.annotation)
            if arg.arg in MESSAGE_PARAMS or ann in MESSAGE_ANNOTATIONS:
                self.msg_params.add(arg.arg)
            elif arg.arg in PAYLOAD_PARAMS:
                self.tainted.add(arg.arg)

    # -- taint queries -----------------------------------------------------

    def is_tainted(self, node: ast.AST) -> bool:
        """Does evaluating ``node`` yield an object aliased with the
        incoming payload?  Attribute reads are deliberately *not*
        tainted (scalar field reads are the common safe case); object
        identity flows through names, subscripts, iteration, and
        shallow container wrappers only."""
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            return self._is_payload_attr(node)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self.is_tainted(elt) for elt in node.elts)
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, ast.BinOp):
            return self.is_tainted(node.left) or self.is_tainted(node.right)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comp_tainted(node)
        if isinstance(node, ast.Call):
            if _is_sanitizing_call(node):
                return False
            name = node.func.id if isinstance(node.func, ast.Name) else None
            if name in _SHALLOW_WRAPPERS and node.args:
                return self.is_tainted(node.args[0])
            return False
        return False

    def _is_payload_attr(self, node: ast.Attribute) -> bool:
        """``msg.payload`` (or deeper: ``msg.payload[0]`` handled via
        Subscript) on a message parameter."""
        return (
            node.attr == "payload"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.msg_params
        )

    def _comp_tainted(self, node: Union[ast.ListComp, ast.GeneratorExp]) -> bool:
        saved = set(self.tainted)
        try:
            for gen in node.generators:
                if self.is_tainted(gen.iter):
                    for name in _target_names(gen.target):
                        self.tainted.add(name)
            return self.is_tainted(node.elt)
        finally:
            self.tainted = saved

    # -- statement walk ----------------------------------------------------

    def run(self) -> None:
        self._walk(self.fn.body)

    def _walk(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, stmt)
            return
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value, stmt)
            return
        elif isinstance(stmt, ast.AugAssign):
            if _is_ctx_rooted(stmt.target) and self.is_tainted(stmt.value):
                self._report(stmt, "augmented-assigned")
            self._check_calls(stmt.value)
            return
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if self.is_tainted(stmt.iter):
                for name in _target_names(stmt.target):
                    self.tainted.add(name)
            self._check_calls(stmt.iter)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
            return
        elif isinstance(stmt, (ast.If, ast.While)):
            self._check_calls(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
            return
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
            return
        elif isinstance(stmt, ast.With):
            self._walk(stmt.body)
            return
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested handlers inherit message params via closure.
            nested = _PayloadTaint(self.rule, self.ctx, stmt)
            nested.msg_params |= self.msg_params
            nested.tainted |= self.tainted
            nested.run()
            return
        # Any expression statement (or the RHS above): check call sinks.
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                self._call_sink(sub)

    def _assign(
        self, targets: List[ast.expr], value: ast.expr, stmt: ast.stmt
    ) -> None:
        tainted_value = self.is_tainted(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if tainted_value:
                    self.tainted.add(target.id)
                else:
                    self.tainted.discard(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                # a, b = msg.payload: every bound name aliases payload parts.
                for name in _target_names(target):
                    if tainted_value:
                        self.tainted.add(name)
                    else:
                        self.tainted.discard(name)
            elif _is_ctx_rooted(target) and tainted_value:
                self._report(stmt, "assigned")
        self._check_calls(value)

    def _check_calls(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._call_sink(sub)

    def _call_sink(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in COPYING_SINK_METHODS:
            return
        if func.attr not in ALIAS_SINK_METHODS:
            return
        if not _is_ctx_rooted(func.value):
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if self.is_tainted(arg):
                self._report(node, f"passed to .{func.attr}()")
                return

    def _report(self, node: ast.AST, how: str) -> None:
        self.ctx.report(
            self.rule,
            node,
            f"incoming payload object {how} into long-lived node state "
            f"without a copy — with an in-memory transport this aliases "
            f"the sender's live object across the LP boundary; use "
            f".copy()/dataclasses.replace()",
        )


def _target_names(target: ast.AST) -> List[str]:
    out: List[str] = []
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            out.append(sub.id)
    return out


@register
class PayloadAliasRule(Rule):
    """ISO001 — message payloads are copied, never aliased, into state."""

    id = "ISO001"
    title = "payload object aliased into node state"
    rationale = (
        "The PR 2 shared-Pointer bug: a Pointer arriving in a message "
        "payload was installed directly into a peer list, so two nodes "
        "(two logical processes) mutated one object — a covert channel "
        "invisible to the message fabric that broke "
        "sequential/partitioned equivalence.  Received objects must be "
        "copied before they outlive the handler."
    )

    def check(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                taint = _PayloadTaint(self, ctx, node)
                if taint.msg_params or taint.tainted:
                    taint.run()

    def check_project(self, project) -> None:
        # Re-run the taint with call-graph edges: payloads followed
        # through helper calls, return values, and handler handoffs.
        from repro.analysis.project import run_payload_taint

        run_payload_taint(self, project)


#: Class-name suffixes that mark per-node protocol services.
SERVICE_CLASS_SUFFIXES = ("Service", "Detector")


@register
class ServiceBoundaryRule(Rule):
    """ISO002 — services reach peer state only through NodeContext."""

    id = "ISO002"
    title = "service touches another node's state directly"
    rationale = (
        "A service owns exactly one NodeContext; reading another node's "
        "context (peer.ctx...) or indexing the network's node table "
        "(net.nodes[addr]...) bypasses the message fabric, so the "
        "information would not exist on a real network and cannot be "
        "replayed by the partitioned engine."
    )

    def check(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith(SERVICE_CLASS_SUFFIXES):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute) and sub.attr == "ctx":
                    if not (
                        isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                    ):
                        ctx.report(
                            self,
                            sub,
                            f"service class {node.name} reaches another "
                            f"object's .ctx — peer state must arrive via "
                            f"messages through the NodeContext",
                        )
                elif isinstance(sub, ast.Subscript):
                    base = sub.value
                    attr = (
                        base.attr
                        if isinstance(base, ast.Attribute)
                        else base.id
                        if isinstance(base, ast.Name)
                        else None
                    )
                    if attr == "nodes":
                        ctx.report(
                            self,
                            sub,
                            f"service class {node.name} indexes the "
                            f"network node table — peer state must "
                            f"arrive via messages through the "
                            f"NodeContext",
                        )


#: Constructor names that build mutable containers.
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "bytearray", "defaultdict", "Counter",
    "deque", "OrderedDict", "ChainMap", "count",
}
#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = {
    "add", "append", "appendleft", "extend", "extendleft", "insert",
    "update", "setdefault", "push", "pop", "popleft", "popitem",
    "remove", "discard", "clear", "sort", "reverse",
}


def _is_mutable_container(node: Optional[ast.AST]) -> bool:
    """Does this expression build a mutable container (or an
    ``itertools.count`` style stateful iterator)?"""
    if isinstance(
        node,
        (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _binding_names(target: ast.AST) -> List[str]:
    """Names a *binding* target introduces.  ``x = ...`` and
    ``a, b = ...`` bind; ``x[k] = ...`` and ``x.f = ...`` mutate an
    existing object and bind nothing."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_binding_names(elt))
        return out
    return []


def _locally_bound_names(fn: FuncDef) -> Set[str]:
    """Names a function binds itself (params, assignments, loop targets,
    with-as) — coarse, no nested-scope split; used only to avoid false
    global-mutation reports when a local shadows a module global."""
    bound: Set[str] = set()
    args = fn.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for sub in ast.walk(fn):
        if isinstance(sub, (ast.Global, ast.Nonlocal)):
            declared_global.update(sub.names)
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                bound.update(_binding_names(target))
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(sub.target, ast.Name):
                bound.add(sub.target.id)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            bound.update(_binding_names(sub.target))
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    bound.update(_binding_names(item.optional_vars))
    return bound - declared_global


@register
class CrossLPStateRule(Rule):
    """ISO003 — no mutable state statically shared across LP partitions."""

    id = "ISO003"
    title = "mutable module/class state reachable from multiple LPs"
    rationale = (
        "Every node is a logical process; the partitioned engine may "
        "run two of them in different event streams.  A module-level "
        "dict/list/set (or a class-body mutable default shared by all "
        "service instances) that protocol code mutates is reachable "
        "from *every* LP at once — a covert channel the message fabric "
        "cannot see, order, or replay.  Move the state into NodeContext, "
        "hand each LP a sanitized copy, or suppress with a comment "
        "explaining why sharing cannot affect protocol decisions."
    )
    #: Host-side code that runs *above* the simulator, never inside an
    #: LP: the analyzer itself (rule registry) and the experiment
    #: drivers (run caches for figure generation).
    exempt_modules = ("repro.analysis", "repro.experiments")

    def check(self, ctx: FileContext) -> None:
        shared = self._module_level_containers(ctx)
        for node in ast.walk(ctx.tree):
            # Lambdas count as function scope too (default_factory=...).
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                self._check_function(ctx, node, shared)
            elif isinstance(node, ast.ClassDef):
                self._check_class_defaults(ctx, node)

    @staticmethod
    def _module_level_containers(ctx: FileContext) -> Set[str]:
        names: Set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and _is_mutable_container(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and _is_mutable_container(stmt.value)
            ):
                names.add(stmt.target.id)
        return names

    def _check_function(
        self, ctx: FileContext, fn: FuncDef, shared: Set[str]
    ) -> None:
        if not shared:
            return
        local = _locally_bound_names(fn)
        hot = shared - local

        def _is_hot(node: ast.AST) -> bool:
            return isinstance(node, ast.Name) and node.id in hot

        for sub in ast.walk(fn):
            if isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and _is_hot(func.value)
                ):
                    self._mutation(ctx, sub, func.value.id, f".{func.attr}()")
                elif (
                    isinstance(func, ast.Name)
                    and func.id == "next"
                    and sub.args
                    and _is_hot(sub.args[0])
                ):
                    self._mutation(
                        ctx, sub, sub.args[0].id, "next() on a shared iterator"
                    )
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and _is_hot(
                        target.value
                    ):
                        self._mutation(
                            ctx, sub, target.value.id, "subscript assignment"
                        )
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    if isinstance(target, ast.Subscript) and _is_hot(
                        target.value
                    ):
                        self._mutation(ctx, sub, target.value.id, "del")

    def _mutation(
        self, ctx: FileContext, node: ast.AST, name: str, how: str
    ) -> None:
        ctx.report(
            self,
            node,
            f"module-level mutable object {name!r} mutated from function "
            f"scope ({how}) — it is reachable from every LP partition at "
            f"once; move it into NodeContext or give each LP a copy",
        )

    def _check_class_defaults(self, ctx: FileContext, cls: ast.ClassDef) -> None:
        for stmt in cls.body:
            value = None
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and _is_mutable_container(value)
            ):
                ctx.report(
                    self,
                    stmt,
                    f"class-body mutable default {cls.name}.{target.id} is "
                    f"shared by every instance — services on different LPs "
                    f"would mutate one object; initialize it per-instance "
                    f"in __init__",
                )
