"""The detlint rule pack.  Importing this package registers every rule
with :mod:`repro.analysis.core`'s registry; add a new module here (and
import it below) to ship a new rule."""

from repro.analysis.rules import determinism, isolation, observability, wire

__all__ = ["determinism", "isolation", "observability", "wire"]
