"""Observability rules: OBS001 span lifecycle, OBS002 metric-name hygiene.

The tracer's export invariant (DESIGN.md §12) is that an ``end=None``
span means *the run stopped mid-operation* — never that an instrumented
code path forgot to close it.  A leaked span also pins an entry in the
node's ``_open`` table, which the invariant monitor reads to attribute
violations to in-flight traces; a forgotten close poisons that
attribution forever after.

The rule understands this repo's idioms:

* opens are ``<...>obs.start(...)`` (the receiver's last name segment is
  ``obs`` or ends with ``obs``); ``instant(...)`` closes itself;
* ``if obs.enabled:`` guards are transparent — when the guard is false
  no span was opened, so guarded opens/closes pair up as if
  unconditional;
* a span stored on ``self.<attr>`` escapes the function; the rule then
  only requires *some* ``end(self.<attr> ...)`` in the same module;
* a span captured by a nested function or lambda that closes it is
  accepted (continuation-passing handlers close spans in callbacks);
* explicit ``raise`` exits are exempt: an exception is exactly the
  "run stopped" case ``end=None`` exists to represent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Union

from repro.analysis.core import FileContext, Rule, register

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_obs_receiver(node: ast.AST) -> bool:
    """Names the tracer handle: ``obs``, ``ctx.obs``, ``self._obs``..."""
    if isinstance(node, ast.Name):
        return node.id == "obs" or node.id.endswith("obs")
    if isinstance(node, ast.Attribute):
        return node.attr == "obs" or node.attr.endswith("obs")
    return False


def _is_span_open(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "start"
        and _is_obs_receiver(node.func.value)
    )


def _is_end_call_on(node: ast.AST, name: str) -> bool:
    """``<obs>.end(name, ...)`` or ``name.end(...)``-style close."""
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return False
    if node.func.attr != "end":
        return False
    if _is_obs_receiver(node.func.value):
        return any(
            isinstance(arg, ast.Name) and arg.id == name for arg in node.args
        )
    return isinstance(node.func.value, ast.Name) and node.func.value.id == name


def _is_end_call_on_attr(node: ast.AST, attr: str) -> bool:
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return False
    if node.func.attr != "end":
        return False
    return any(
        isinstance(arg, ast.Attribute) and arg.attr == attr for arg in node.args
    )


def _is_obs_guard(test: ast.AST) -> bool:
    """``if obs.enabled:`` (possibly conjoined) — transparent for span
    pairing."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
    return False


def _mentions_name(test: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(test)
    )


@dataclass
class _PathState:
    ended: bool = False
    terminated: bool = False  # every path through here returned/raised


@register
class SpanLifecycleRule(Rule):
    """OBS001 — spans opened with start() must be ended on all paths."""

    id = "OBS001"
    title = "span opened but not closed on every path"
    rationale = (
        "An unclosed span exports with end=None (reserved for runs that "
        "stop mid-operation) and leaks an entry in NodeObs._open, which "
        "the invariant monitor uses to attribute violations to in-flight "
        "traces.  Close the span on every normal exit, or use instant() "
        "for point events."
    )

    def check(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(ctx, node)
        self._check_discards(ctx)

    # -- discarded opens ---------------------------------------------------

    def _check_discards(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Expr)
                and _is_span_open(node.value)
            ):
                ctx.report(
                    self,
                    node,
                    "span opened and immediately discarded — nothing can "
                    "ever end it; use instant() for a point event",
                )

    # -- per-function span tracking ---------------------------------------

    def _check_function(self, ctx: FileContext, fn: FuncDef) -> None:
        for name, open_node in self._local_opens(fn):
            if self._escapes(fn, name, open_node):
                continue
            if not self._closes_on_all_paths(fn.body, name, open_node):
                ctx.report(
                    self,
                    open_node,
                    f"span {name!r} is not ended on every path through "
                    f"{fn.name}()",
                )
        for attr, open_node in self._attr_opens(fn):
            if not self._module_ends_attr(ctx, attr):
                ctx.report(
                    self,
                    open_node,
                    f"span stored on self.{attr} is never passed to "
                    f"end() anywhere in this module",
                )

    def _local_opens(self, fn: FuncDef) -> List[tuple]:
        out = []
        for stmt in self._own_statements(fn):
            if isinstance(stmt, ast.Assign) and _is_span_open(stmt.value):
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    out.append((target.id, stmt.value))
        return out

    def _attr_opens(self, fn: FuncDef) -> List[tuple]:
        out = []
        for stmt in self._own_statements(fn):
            if isinstance(stmt, ast.Assign) and _is_span_open(stmt.value):
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out.append((target.attr, stmt.value))
        return out

    def _own_statements(self, fn: FuncDef) -> List[ast.stmt]:
        """Statements of ``fn`` excluding nested function bodies."""
        out: List[ast.stmt] = []

        def walk(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                out.append(stmt)
                for block in self._blocks(stmt):
                    walk(block)

        walk(fn.body)
        return out

    @staticmethod
    def _blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
        blocks = []
        for field in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                blocks.append(value)
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        return blocks

    def _escapes(self, fn: FuncDef, name: str, open_node: ast.AST) -> bool:
        """The span outlives the function: captured by a nested
        function/lambda (continuation-passing close) or passed as an
        argument to any non-``end`` call (e.g. ``runtime.schedule(...,
        span)`` hands it to the callback that will close it)."""
        for stmt in ast.walk(fn):
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt is not fn
            ) or isinstance(stmt, ast.Lambda):
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
            elif isinstance(stmt, ast.Call) and not _is_end_call_on(stmt, name):
                for arg in list(stmt.args) + [kw.value for kw in stmt.keywords]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Lambda):
                            continue
                        if isinstance(sub, ast.Name) and sub.id == name:
                            return True
        return False

    def _module_ends_attr(self, ctx: FileContext, attr: str) -> bool:
        return any(
            _is_end_call_on_attr(node, attr) for node in ast.walk(ctx.tree)
        )

    # -- all-paths close analysis -----------------------------------------

    def _closes_on_all_paths(
        self, body: List[ast.stmt], name: str, open_node: ast.AST
    ) -> bool:
        self._violation = False
        self._opened_reached = False
        state = self._analyze(body, name, _PathState(), seen_open=False,
                              open_node=open_node)
        if self._violation:
            return False
        # Fallthrough off the end of the function without an end call.
        return state.terminated or state.ended or not self._opened_reached

    def _analyze(
        self,
        stmts: Sequence[ast.stmt],
        name: str,
        state: _PathState,
        seen_open: bool,
        open_node: ast.AST,
    ) -> _PathState:
        for stmt in stmts:
            if state.terminated:
                break
            if isinstance(stmt, ast.Assign) and stmt.value is open_node:
                seen_open = True
                self._opened_reached = True
                state.ended = False
                continue
            if not seen_open and not self._opened_reached:
                # Before the open nothing matters — but an If may contain
                # the open in a guard block.
                if isinstance(stmt, ast.If) and self._contains_open(
                    stmt, open_node
                ):
                    if _is_obs_guard(stmt.test):
                        state = self._analyze(
                            stmt.body, name, state, seen_open, open_node
                        )
                        seen_open = self._opened_reached
                    else:
                        # Conditionally opened without an obs guard: track
                        # the branch alone.
                        branch = self._analyze(
                            stmt.body, name, _PathState(), seen_open, open_node
                        )
                        seen_open = False
                continue
            state = self._step(stmt, name, state, open_node)
        return state

    def _contains_open(self, stmt: ast.stmt, open_node: ast.AST) -> bool:
        return any(sub is open_node for sub in ast.walk(stmt))

    def _step(
        self, stmt: ast.stmt, name: str, state: _PathState, open_node: ast.AST
    ) -> _PathState:
        if self._stmt_ends(stmt, name):
            state.ended = True
            return state
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return) and not state.ended:
                self._violation = True
            state.terminated = True
            return state
        if isinstance(stmt, ast.If):
            transparent = _is_obs_guard(stmt.test) or _mentions_name(
                stmt.test, name
            )
            body_state = self._analyze(
                stmt.body, name, _PathState(state.ended), True, open_node
            )
            else_state = self._analyze(
                stmt.orelse, name, _PathState(state.ended), True, open_node
            )
            if transparent:
                # Guard tracks the open condition: treat the guarded body
                # as the only path that matters for the span.
                state.ended = body_state.ended or else_state.ended
                state.terminated = body_state.terminated and (
                    else_state.terminated if stmt.orelse else False
                )
                return state
            both_end = (body_state.ended or body_state.terminated) and (
                else_state.ended or else_state.terminated
            )
            state.ended = state.ended or (
                body_state.ended and else_state.ended
            )
            if stmt.orelse:
                state.terminated = body_state.terminated and else_state.terminated
            if both_end and stmt.orelse:
                state.ended = True
            return state
        if isinstance(stmt, ast.Try):
            body_state = self._analyze(
                stmt.body, name, _PathState(state.ended), True, open_node
            )
            final_state = (
                self._analyze(
                    stmt.finalbody, name, _PathState(state.ended), True, open_node
                )
                if stmt.finalbody
                else None
            )
            if final_state is not None and final_state.ended:
                state.ended = True
            elif body_state.ended:
                state.ended = True
            return state
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While, ast.With)):
            # Loop/with bodies may close the span; accept any close inside
            # (0-iteration loops are the instrumenting code's concern).
            inner = self._analyze(
                list(getattr(stmt, "body", [])), name, _PathState(state.ended),
                True, open_node,
            )
            state.ended = state.ended or inner.ended
            return state
        return state

    def _stmt_ends(self, stmt: ast.stmt, name: str) -> bool:
        if isinstance(stmt, ast.Expr):
            return _is_end_call_on(stmt.value, name)
        return False


# -- OBS002: no ad-hoc metric-name literals at call sites ------------------

_METRIC_METHODS = ("inc", "observe", "set_gauge")


def _is_registry_receiver(node: ast.AST) -> bool:
    """Names a :class:`MetricsRegistry` handle: ``registry``, ``reg``,
    ``obs.registry``, ``self._registry``...  Deliberately narrow — other
    ``observe``/``inc`` methods (``LifetimeEstimator.observe``,
    ``Dist.observe``) live on receivers named otherwise."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    return name in ("registry", "reg") or name.endswith("registry")


@register
class MetricNameRule(Rule):
    """OBS002 — metric names must come from the declared catalog."""

    id = "OBS002"
    title = "ad-hoc metric-name string literal at a registry call site"
    rationale = (
        "Metric names recorded via MetricsRegistry.inc/observe/set_gauge "
        "must be constants declared through "
        "repro.obs.metrics.declare_metric (which enforces the "
        "subsystem.noun_verb convention and uniqueness).  A literal at "
        "the call site can typo silently — the series just comes out "
        "empty — and leaves the name invisible to the catalog the "
        "health SLOs and exporters are built from.  Per-key names "
        "(peers.size.level.<l>) interpolate onto a declared per_key "
        "prefix constant: f\"{PEERS_SIZE_LEVEL}.{level}\"."
    )
    #: The catalog itself declares the names; its literals are the point.
    exempt_modules = ("repro.obs.metrics",)

    def check(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
                and _is_registry_receiver(node.func.value)
                and node.args
            ):
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                ctx.report(
                    self,
                    node,
                    f"metric name {first.value!r} is an ad-hoc literal; "
                    f"declare it via repro.obs.metrics.declare_metric and "
                    f"import the constant",
                )
            elif isinstance(first, ast.JoinedStr) and self._literal_prefixed(
                first
            ):
                ctx.report(
                    self,
                    node,
                    "per-key metric name starts with a literal prefix; "
                    "interpolate a declared per_key constant instead "
                    '(f"{PREFIX}.{key}")',
                )

    @staticmethod
    def _literal_prefixed(joined: ast.JoinedStr) -> bool:
        """An f-string whose *first* piece is literal text (the ad-hoc
        prefix case).  ``f"{CONST}.{key}"`` starts with a FormattedValue
        and passes."""
        for value in joined.values:
            if isinstance(value, ast.Constant):
                return bool(str(value.value))
            return False
        return False
