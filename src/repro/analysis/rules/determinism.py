"""Determinism rules: DET001 (wall clock), DET002 (unseeded/global RNG),
DET003 (unordered iteration feeding protocol decisions).

All three encode the repo's headline contract — *same seed, same bytes,
in every execution mode* (DESIGN.md §4, §12) — against the three ways
Python code most easily breaks it: reading the host clock, drawing from
a process-global or entropy-seeded RNG, and letting set/hash order pick
protocol targets.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.analysis.core import FileContext, Rule, register


class ImportMap(ast.NodeVisitor):
    """Resolve local names to canonical dotted origins.

    ``import numpy as np`` maps ``np`` -> ``numpy``; ``from time import
    perf_counter as pc`` maps ``pc`` -> ``time.perf_counter``.
    """

    def __init__(self, tree: ast.AST):
        self.names: Dict[str, str] = {}
        self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            origin = alias.name if alias.asname else alias.name.split(".", 1)[0]
            self.names[local] = origin

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.names[local] = f"{node.module}.{alias.name}"

    def qualify(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or None."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.names.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


#: Wall-clock reads: anything observing host time.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """DET001 — no wall-clock reads in simulator code."""

    id = "DET001"
    title = "wall-clock read outside the profiler"
    rationale = (
        "Timestamps must come from the simulated clock (runtime.now); a "
        "host-clock read makes output depend on machine speed, breaking "
        "bit-identical sequential/partitioned/threaded replays.  Only "
        "repro.obs.profile (whose whole job is wall-clock attribution), "
        "repro.live.clock (the realtime backend's one sanctioned time "
        "source — everything else in repro.live must go through its "
        "Clock), and benchmarks may read host time."
    )
    exempt_modules = ("repro.obs.profile", "repro.live.clock")

    def check(self, ctx: FileContext) -> None:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = imports.qualify(node.func)
            if qual in WALL_CLOCK_CALLS:
                ctx.report(
                    self,
                    node,
                    f"wall-clock call {qual}() — use the simulated clock "
                    f"(runtime.now) or move the measurement into "
                    f"repro.obs.profile",
                )


#: numpy.random attributes that are *constructors* of explicitly seeded
#: generators (fine when given a seed) rather than draws from the global
#: process-wide RNG.
_NP_RANDOM_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "SeedSequence",
    "BitGenerator",
}


@register
class UnseededRandomRule(Rule):
    """DET002 — no process-global or entropy-seeded RNG."""

    id = "DET002"
    title = "module-level or unseeded random source"
    rationale = (
        "The stdlib random module and numpy's module-level random "
        "functions share one hidden process-global state: any draw "
        "perturbs every later draw everywhere, and OS-entropy seeding "
        "(default_rng() with no arguments) differs per run.  All "
        "randomness flows from repro.sim.rng.RandomStreams so streams "
        "are named, independent, and replayable."
    )
    exempt_modules = ("repro.sim.rng",)

    def check(self, ctx: FileContext) -> None:
        imports = ImportMap(ctx.tree)
        self._check_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = imports.qualify(node.func)
            if qual is None:
                continue
            self._check_call(ctx, node, qual)

    def _check_imports(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        ctx.report(
                            self,
                            node,
                            "stdlib random is a hidden process-global RNG; "
                            "draw from repro.sim.rng.RandomStreams instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    ctx.report(
                        self,
                        node,
                        "stdlib random is a hidden process-global RNG; "
                        "draw from repro.sim.rng.RandomStreams instead",
                    )

    def _check_call(self, ctx: FileContext, node: ast.Call, qual: str) -> None:
        parts = qual.split(".")
        if parts[0] == "random" and len(parts) == 2:
            # Module-level stdlib draw reached via an aliased import.
            ctx.report(
                self, node, f"{qual}() draws from the process-global RNG"
            )
            return
        if not qual.startswith("numpy.random."):
            return
        tail = parts[-1]
        if tail in _NP_RANDOM_CONSTRUCTORS:
            if not node.args and not node.keywords:
                ctx.report(
                    self,
                    node,
                    f"{tail}() with no seed draws OS entropy — seed it "
                    f"(ideally via repro.sim.rng.RandomStreams)",
                )
        else:
            ctx.report(
                self,
                node,
                f"numpy.random.{tail}() uses the module-level global RNG; "
                f"use a Generator from repro.sim.rng.RandomStreams",
            )


#: Call/method names that constitute a protocol decision: sending,
#: peer-list/top-list mutation, target choice, scheduling.
DECISION_SINKS: Set[str] = {
    "send",
    "send_message",
    "make_reply",
    "install",
    "add",
    "remove",
    "merge",
    "update",
    "multicast",
    "mcast",
    "relay",
    "forward",
    "report_event",
    "schedule",
    "call_later",
    "choose",
    "push",
    "leave",
    "crash",
}


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_unordered(node: ast.AST) -> bool:
    """Does this expression produce a hash-ordered iterable?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in ("set", "frozenset"):
            return True
        if name == "keys" and isinstance(node.func, ast.Attribute):
            return True
        if name in ("union", "intersection", "difference", "symmetric_difference"):
            return _is_unordered(node.func.value) if isinstance(
                node.func, ast.Attribute
            ) else False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_unordered(node.left) or _is_unordered(node.right)
    return False


def _has_sink(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = _call_name(sub)
            if name in DECISION_SINKS:
                return True
    return False


@register
class UnorderedIterationRule(Rule):
    """DET003 — no set/keys() iteration feeding protocol decisions."""

    id = "DET003"
    title = "unordered iteration feeds a protocol decision"
    rationale = (
        "Iterating a set (or dict keys built in schedule-dependent "
        "order) and sending / mutating peer state per element makes the "
        "action order depend on hash seeds and insertion history, which "
        "differs between sequential and partitioned schedules.  Wrap "
        "the iterable in sorted(...) to pin the order."
    )

    _msg = (
        "iteration over an unordered {what} drives a protocol decision; "
        "wrap the iterable in sorted(...)"
    )

    _SIMPLE_STMTS = (
        ast.Expr,
        ast.Assign,
        ast.AugAssign,
        ast.AnnAssign,
        ast.Return,
        ast.Assert,
    )

    def check(self, ctx: FileContext) -> None:
        # Map each comprehension to its enclosing *simple* statement for
        # the sink scan (compound statements would widen the scan to a
        # whole function body).
        stmt_of: Dict[int, ast.stmt] = {}
        for stmt in ast.walk(ctx.tree):
            if isinstance(stmt, self._SIMPLE_STMTS):
                for sub in ast.walk(stmt):
                    stmt_of.setdefault(id(sub), stmt)
        set_names = _set_bound_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._unordered(node.iter, set_names) and (
                    _has_sink(node) or _returns(node)
                ):
                    ctx.report(self, node.iter, self._describe(node.iter))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
                if isinstance(node, ast.SetComp):
                    continue  # producing a set is fine; iterating one is not
                for gen in node.generators:
                    if self._unordered(gen.iter, set_names):
                        stmt = stmt_of.get(id(node))
                        if stmt is not None and _has_sink(stmt):
                            ctx.report(self, gen.iter, self._describe(gen.iter))

    @staticmethod
    def _unordered(node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, ast.Name) and node.id in set_names:
            return True
        return _is_unordered(node)

    def _describe(self, iter_node: ast.AST) -> str:
        what = "set"
        if isinstance(iter_node, ast.Call) and _call_name(iter_node) == "keys":
            what = "dict.keys() view"
        return self._msg.format(what=what)


def _set_bound_names(tree: ast.AST) -> Set[str]:
    """Names ever assigned a syntactically set-typed value.  Coarse (no
    scoping, no kill on rebind) — iterating such a name is suspect even
    if some other assignment made it a list."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_unordered(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            ann = node.annotation
            if (isinstance(ann, ast.Name) and ann.id in ("set", "frozenset")) or (
                node.value is not None and _is_unordered(node.value)
            ):
                names.add(node.target.id)
    return names


def _returns(node: ast.AST) -> bool:
    """Does the loop body return per-element results (an ordered
    consumer upstream cannot reorder them)?"""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
    return False


#: Callable names that sum floats: ``sum`` is left-to-right dependent,
#: ``fsum``/``nansum`` advertise float inputs outright.
_SUM_CALLS = {"sum", "fsum", "nansum"}
#: Metric recording methods (see repro.obs.metrics / rule OBS001).
_METRIC_METHODS = {"inc", "observe", "set_gauge"}


def _sum_over_unordered(node: ast.Call, set_names: Set[str]) -> bool:
    """Is this a ``sum(...)``-family call whose iterable is unordered —
    either directly (``sum(weights_set)``) or through a comprehension
    over one (``sum(p.w for p in peers_set)``)?"""
    if _call_name(node) not in _SUM_CALLS or not node.args:
        return False
    arg = node.args[0]
    if isinstance(arg, ast.Name) and arg.id in set_names:
        return True
    if _is_unordered(arg):
        return True
    if isinstance(arg, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        for gen in arg.generators:
            if (
                isinstance(gen.iter, ast.Name) and gen.iter.id in set_names
            ) or _is_unordered(gen.iter):
                return True
    return False


def _ctx_rooted(node: ast.AST) -> bool:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id in ("self", "ctx")


def _feeds_state(stmt: ast.stmt) -> bool:
    """Does this simple statement let a float total escape into protocol
    state or a metric — assignment to ctx/self, a return, or a metric
    recording call?"""
    if isinstance(stmt, ast.Return):
        return True
    if isinstance(stmt, ast.Assign) and any(
        _ctx_rooted(t) for t in stmt.targets
    ):
        return True
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)) and _ctx_rooted(
        stmt.target
    ):
        return True
    for sub in ast.walk(stmt):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _METRIC_METHODS
        ):
            return True
    return False


@register
class FloatAccumulationRule(Rule):
    """DET004 — no float accumulation over unordered collections feeding
    metrics or protocol state."""

    id = "DET004"
    title = "float accumulation over an unordered collection"
    rationale = (
        "Float addition is not associative: summing a set's elements "
        "visits them in hash order, so the rounding error — and "
        "eventually a threshold comparison or a published metric — "
        "depends on hash seeds and insertion history, not the protocol.  "
        "Sort the iterable (sorted(...)) before summing; if the elements "
        "are ints the sum is order-independent and a suppression comment "
        "saying so is fine."
    )

    _SIMPLE_STMTS = (
        ast.Expr,
        ast.Assign,
        ast.AugAssign,
        ast.AnnAssign,
        ast.Return,
    )

    def check(self, ctx: FileContext) -> None:
        set_names = _set_bound_names(ctx.tree)
        self._check_sum_calls(ctx, set_names)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_loop_accumulation(ctx, node, set_names)

    def _check_sum_calls(self, ctx: FileContext, set_names: Set[str]) -> None:
        # Map each sum() call to its enclosing simple statement, so we
        # only flag totals that actually escape (state/metric/return).
        stmt_of: Dict[int, ast.stmt] = {}
        for stmt in ast.walk(ctx.tree):
            if isinstance(stmt, self._SIMPLE_STMTS):
                for sub in ast.walk(stmt):
                    stmt_of.setdefault(id(sub), stmt)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _sum_over_unordered(node, set_names):
                continue
            stmt = stmt_of.get(id(node))
            if stmt is not None and _feeds_state(stmt):
                ctx.report(
                    self,
                    node,
                    "float sum over an unordered collection feeds protocol "
                    "state or a metric; the total depends on hash order — "
                    "sum over sorted(...) instead",
                )

    def _check_loop_accumulation(
        self, ctx: FileContext, fn: ast.AST, set_names: Set[str]
    ) -> None:
        # for x in some_set: acc += ...   where acc later reaches state,
        # a metric, or a return inside the same function.
        for node in ast.walk(fn):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            unordered = (
                isinstance(node.iter, ast.Name) and node.iter.id in set_names
            ) or _is_unordered(node.iter)
            if not unordered:
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.AugAssign)
                    and isinstance(sub.op, ast.Add)
                    and isinstance(sub.target, ast.Name)
                    and self._escapes(fn, sub.target.id, node)
                ):
                    ctx.report(
                        self,
                        sub,
                        f"accumulator {sub.target.id!r} grows in hash order "
                        f"over an unordered iterable and then feeds state, "
                        f"a metric, or a return — iterate sorted(...) (or "
                        f"suppress if the elements are ints)",
                    )

    @staticmethod
    def _escapes(fn: ast.AST, name: str, loop: ast.AST) -> bool:
        loop_nodes = {id(sub) for sub in ast.walk(loop)}
        for stmt in ast.walk(fn):
            if id(stmt) in loop_nodes:
                continue
            if not isinstance(
                stmt, (ast.Return, ast.Assign, ast.AugAssign, ast.Expr)
            ):
                continue
            uses = any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(stmt)
            )
            if not uses:
                continue
            if _feeds_state(stmt):
                return True
        return False
