"""DetSan — the runtime cross-validator for the static determinism and
isolation rules.

detlint's ISO001/ISO003 prove the *absence of patterns*; DetSan checks
the *absence of the bug itself* while a simulation actually runs.  It is
an opt-in sanitizer (``REPRO_DETSAN=1`` or ``repro chaos --detsan``)
with three checks:

* **payload retention** (ISO001's runtime twin) — every mutable object
  that crosses the transport boundary inside a ``Message.payload`` is
  tagged by identity; after the receiving handler returns (and again in
  a whole-network final scan) no tagged object may be reachable from any
  *other* node's ``ctx``/service state.  With the in-memory transport a
  retained payload is the sender's live object: the exact shared-Pointer
  bug the PR 2 chaos runs surfaced.
* **wall-clock tripwire** (DET001's twin) — ``time.time()`` and friends
  are wrapped; a call whose caller is a ``repro.*`` module outside the
  sanctioned list (profiler, realtime clock) is a violation.
* **global-RNG tripwire** (DET002's twin) — stdlib ``random`` and
  numpy's module-level draw functions are wrapped the same way.

The sanitizer observes only: deliveries are passed through unchanged,
wrapped clock/RNG functions still return the original result, and
everything is restored on :meth:`DetSan.detach` — so a run with DetSan
on is behaviorally identical, just slower.

Sequential engine only: the retention check needs the single central
delivery point (``Transport._deliver``); the partitioned transports
deliver inside their own LPs and have no such chokepoint.
"""

from __future__ import annotations

import os
import sys
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

#: Environment variable that opts a run into the sanitizer.
DETSAN_ENV = "REPRO_DETSAN"

#: Caller-module prefixes allowed to touch the host clock / global RNG
#: (mirrors the exemptions of the static rules DET001/DET002).
_EXEMPT_CALLERS = (
    "repro.obs.profile",
    "repro.obs.dashboard",
    "repro.live.clock",
    "repro.sim.parallel",
    "repro.analysis",
)

#: ctx attributes that are infrastructure, not protocol state: scanning
#: them would walk into the runtime/transport (which legitimately holds
#: every in-flight message) or into host objects.
_CTX_INFRA_ATTRS = {
    "runtime",
    "endpoint",
    "obs",
    "config",
    "rng",
    "attached_info",
    "report_event",
    "confirm_dead",
    "loop_handles",
}
#: Service attributes skipped for the same reason.
_SERVICE_INFRA_ATTRS = {"ctx", "runtime", "sim", "transport", "obs"}

#: Object-type modules never expanded during the reachability walk:
#: infrastructure layers whose internals either hold every message
#: (transport, runtime) or are host-side (obs, kernel, sim).
_SKIP_MODULE_PREFIXES = (
    "repro.sim",
    "repro.net",
    "repro.kernel",
    "repro.obs",
    "repro.live",
)


@dataclass(frozen=True)
class DetSanViolation:
    """One sanitizer finding."""

    check: str  #: "payload-retained" | "wall-clock" | "global-rng"
    where: str  #: location: node key or caller module:line
    detail: str

    def describe(self) -> str:
        return f"[{self.check}] {self.where}: {self.detail}"


def detsan_requested(env: Optional[Dict[str, str]] = None) -> bool:
    """Did the environment opt into the sanitizer (``REPRO_DETSAN=1``)?"""
    value = (env if env is not None else os.environ).get(DETSAN_ENV, "")
    return value.strip().lower() in ("1", "true", "on", "yes")


def _is_mutable_payload(obj: Any) -> bool:
    """Is this a payload component whose *identity* matters — a mutable
    container or a mutable protocol object (Pointer, ...)?

    Hashable protocol objects (NodeId, frozen EventRecord) are immutable
    value types: sharing them across nodes is safe and intended, so they
    are not tagged.  Unhashability is Python's own marker for "mutable,
    identity matters" (non-frozen dataclasses set ``__hash__ = None``).
    """
    if obj is None or isinstance(obj, (str, bytes, int, float, bool)):
        return False
    if isinstance(obj, (list, dict, set, bytearray)):
        return True
    return (
        type(obj).__module__.startswith("repro.")
        and type(obj).__hash__ is None
    )


def _payload_objects(payload: Any) -> List[Any]:
    """The mutable objects a payload carries (tuples/lists unpacked one
    level — wire payloads are flat by schema)."""
    out: List[Any] = []
    if isinstance(payload, (tuple, list)):
        if isinstance(payload, list) and _is_mutable_payload(payload):
            out.append(payload)
        for item in payload:
            if isinstance(item, (list, tuple)):
                out.extend(_payload_objects(item))
            elif _is_mutable_payload(item):
                out.append(item)
    elif _is_mutable_payload(payload):
        out.append(payload)
    return out


def _object_fields(obj: Any) -> List[Any]:
    """Attribute values of an instance, working for both ``__dict__``
    and ``__slots__`` layouts."""
    try:
        return list(vars(obj).values())
    except TypeError:
        pass
    values: List[Any] = []
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            try:
                values.append(getattr(obj, slot))
            except AttributeError:  # pragma: no cover - unset slot
                pass
    return values


class DetSan:
    """The sanitizer: attach to a sequential :class:`PeerWindowNetwork`,
    run the workload, call :meth:`final_scan`, read :attr:`violations`."""

    def __init__(
        self,
        max_tracked: int = 512,
        scan_depth: int = 8,
        scan_stride: int = 16,
        max_violations: int = 64,
    ):
        self.max_tracked = max_tracked
        self.scan_depth = scan_depth
        #: Full receiver-state scans are sampled (every Nth delivery);
        #: the final scan covers everything still in the tag ring.
        self.scan_stride = max(1, scan_stride)
        self.max_violations = max_violations
        self.violations: List[DetSanViolation] = []
        self.deliveries_seen = 0
        self.deliveries_scanned = 0
        self._net = None
        self._orig_deliver: Optional[Callable] = None
        #: Ring of (kind, src, dst, objects) for delivered payloads —
        #: strong references, so ``id()`` stays unambiguous.
        self._ring: deque = deque(maxlen=max_tracked)
        self._seen_keys: Set[Tuple] = set()
        self._patched: List[Tuple[Any, str, Any]] = []

    # -- lifecycle ----------------------------------------------------------

    def attach(self, net) -> None:
        """Wrap the network's transport delivery and install the
        clock/RNG tripwires.  Sequential engine only."""
        if self._net is not None:
            raise RuntimeError("DetSan is already attached")
        transport = getattr(net, "transport", None)
        if transport is None:
            raise ValueError(
                "DetSan requires the sequential engine: partitioned "
                "transports deliver inside their own LPs and offer no "
                "central tap point (run without parallel=)"
            )
        self._net = net
        self._orig_deliver = transport._deliver
        transport._deliver = self._deliver_tap
        self._install_tripwires()

    def detach(self) -> None:
        """Restore the transport and every patched clock/RNG function."""
        if self._net is not None and self._orig_deliver is not None:
            self._net.transport._deliver = self._orig_deliver
        for owner, name, original in reversed(self._patched):
            setattr(owner, name, original)
        self._patched.clear()
        self._net = None
        self._orig_deliver = None

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- payload retention --------------------------------------------------

    def _deliver_tap(self, msg) -> None:
        orig = self._orig_deliver
        orig(msg)
        if msg.src == msg.dst:
            return
        objs = _payload_objects(msg.payload)
        if not objs:
            return
        self.deliveries_seen += 1
        self._ring.append((msg.kind, msg.src, msg.dst, tuple(objs)))
        if self.deliveries_seen % self.scan_stride:
            return
        self.deliveries_scanned += 1
        node = self._net.nodes.get(msg.dst)
        if node is None:
            return
        targets = {id(obj): obj for obj in objs}
        for hit in self._scan_node(node, targets):
            self._retention(
                msg.dst,
                f"{type(hit).__name__} from a {msg.kind!r} payload "
                f"(sent by {msg.src!r}) is still reachable from node "
                f"state after the handler returned — store a copy, "
                f"never the received object",
            )

    def final_scan(self) -> List[DetSanViolation]:
        """Whole-network sweep: any still-tagged payload object reachable
        from a node that did not send it is a retention violation."""
        if self._net is None:
            return self.violations
        targets: Dict[int, Any] = {}
        allowed: Dict[int, Set[Hashable]] = {}
        kinds: Dict[int, str] = {}
        for kind, src, _dst, objs in self._ring:
            for obj in objs:
                targets[id(obj)] = obj
                allowed.setdefault(id(obj), set()).add(src)
                kinds[id(obj)] = kind
        if not targets:
            return self.violations
        for key, node in sorted(
            self._net.nodes.items(), key=lambda kv: repr(kv[0])
        ):
            for hit in self._scan_node(node, targets):
                if key in allowed.get(id(hit), ()):
                    continue  # the sender's own object, where it belongs
                self._retention(
                    key,
                    f"{type(hit).__name__} delivered in a "
                    f"{kinds.get(id(hit), '?')!r} payload is retained in "
                    f"this node's state at shutdown — it aliases the "
                    f"sender's live object",
                )
        return self.violations

    def _scan_node(self, node, targets: Dict[int, Any]) -> List[Any]:
        """Objects from ``targets`` reachable from the node's protocol
        state (identity match), bounded by depth and a visited set."""
        roots: List[Any] = []
        ctx = getattr(node, "ctx", None)
        if ctx is not None:
            for name, value in sorted(vars(ctx).items()):
                if name not in _CTX_INFRA_ATTRS:
                    roots.append(value)
        for name in ("join", "maintenance", "failure", "levels", "dissemination"):
            service = getattr(node, name, None)
            if service is not None:
                for attr, value in sorted(
                    ((a, v) for a, v in self._service_state(service)),
                ):
                    if attr not in _SERVICE_INFRA_ATTRS:
                        roots.append(value)
        hits: List[Any] = []
        hit_ids: Set[int] = set()
        seen: Set[int] = set()
        stack: List[Tuple[Any, int]] = [(r, 0) for r in roots]
        while stack:
            obj, depth = stack.pop()
            oid = id(obj)
            if oid in seen:
                continue
            seen.add(oid)
            if oid in targets and targets[oid] is obj and oid not in hit_ids:
                hit_ids.add(oid)
                hits.append(obj)
                continue
            if depth >= self.scan_depth:
                continue
            for child in self._children(obj):
                stack.append((child, depth + 1))
        return hits

    @staticmethod
    def _service_state(service) -> List[Tuple[str, Any]]:
        try:
            return list(vars(service).items())
        except TypeError:  # pragma: no cover - slotted service
            return [
                (slot, getattr(service, slot))
                for klass in type(service).__mro__
                for slot in getattr(klass, "__slots__", ())
                if hasattr(service, slot)
            ]

    @staticmethod
    def _children(obj: Any) -> List[Any]:
        if obj is None or isinstance(obj, (str, bytes, int, float, bool)):
            return []
        if isinstance(obj, dict):
            return list(obj.keys()) + list(obj.values())
        if isinstance(obj, (list, tuple, set, frozenset, deque)):
            return list(obj)
        module = type(obj).__module__
        if module.startswith("repro.") and not module.startswith(
            _SKIP_MODULE_PREFIXES
        ):
            return _object_fields(obj)
        return []

    def _retention(self, where: Hashable, detail: str) -> None:
        self._record(DetSanViolation("payload-retained", repr(where), detail))

    # -- clock / RNG tripwires ----------------------------------------------

    def _install_tripwires(self) -> None:
        # The sanitizer imports the global RNG module precisely to wrap
        # it; it never draws from it.
        import random as _random  # detlint: ignore[DET002]
        import time as _time

        for name in (
            "time", "time_ns", "monotonic", "monotonic_ns",
            "perf_counter", "perf_counter_ns",
        ):
            self._patch(_time, name, "wall-clock")
        for name in (
            "random", "randint", "randrange", "uniform", "choice",
            "choices", "shuffle", "sample", "gauss", "expovariate",
        ):
            self._patch(_random, name, "global-rng")
        try:
            import numpy as _np
        except ImportError:  # pragma: no cover - numpy is a core dep
            return
        for name in (
            "random", "rand", "randint", "choice", "shuffle", "uniform",
            "normal", "permutation", "exponential",
        ):
            self._patch(_np.random, name, "global-rng")

    def _patch(self, owner: Any, name: str, check: str) -> None:
        original = getattr(owner, name, None)
        if original is None:  # pragma: no cover - missing on this platform
            return
        sanitizer = self

        def tripwire(*args: Any, **kwargs: Any) -> Any:
            frame = sys._getframe(1)
            module = frame.f_globals.get("__name__", "")
            if module.startswith("repro.") and not module.startswith(
                _EXEMPT_CALLERS
            ):
                sanitizer._record(
                    DetSanViolation(
                        check,
                        f"{module}:{frame.f_lineno}",
                        f"{owner.__name__}.{name}() called from simulator "
                        f"code — use the runtime clock / seeded streams",
                    )
                )
            return original(*args, **kwargs)

        tripwire.__name__ = getattr(original, "__name__", name)
        setattr(owner, name, tripwire)
        self._patched.append((owner, name, original))

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, violation: DetSanViolation) -> None:
        key = (violation.check, violation.where, violation.detail[:60])
        if key in self._seen_keys:
            return
        if len(self.violations) >= self.max_violations:
            return
        self._seen_keys.add(key)
        self.violations.append(violation)
