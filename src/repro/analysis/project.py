"""Whole-project analysis: symbol table, call graph, interprocedural taint.

The per-file rules see one function at a time, which is exactly how the
PR 2 shared-Pointer bug escaped review: the handler extracted
``msg.payload`` and a helper two calls away installed it into the peer
list.  This module gives the rule pack a project view:

* :class:`ProjectContext` — every parsed file, a module-level symbol
  table of functions/methods, per-module import maps, and a
  *conservative* call-graph resolver (:meth:`ProjectContext.resolve_call`):
  a call edge exists only when the target is unambiguous — same-module
  names, ``from m import f`` imports, ``self.method`` within a class, or
  a method name defined exactly once project-wide (and not a
  container-protocol name like ``add``/``append``, which stay modeled as
  sinks, not calls).  Unresolvable calls are simply not followed; the
  analysis under-approximates rather than guessing.
* per-function **taint summaries** (:meth:`ProjectContext.summary`),
  computed on demand and memoized: for each parameter, does a tainted
  argument get stored into ``ctx``/``self`` state without a copy, and
  does it flow to the return value?  Summaries compose transitively, so
  a chain ``handler -> helper -> installer`` is followed to any depth
  (recursive cycles fall back to the empty, no-effect summary).
* :func:`run_payload_taint` — the interprocedural ISO001 driver, invoked
  from ``PayloadAliasRule.check_project``.  Chain findings are reported
  at the **source site** (the call in the message handler that lets the
  payload escape), not at the sink inside the callee: that is where the
  copy belongs, and where a ``# detlint: ignore[ISO001]`` comment must
  suppress.  Sites the per-file pass already reported are skipped, so
  the two passes never double-count one line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import FileContext, Rule
from repro.analysis.rules.determinism import ImportMap
from repro.analysis.rules.isolation import (
    ALIAS_SINK_METHODS,
    COPYING_SINK_METHODS,
    MESSAGE_ANNOTATIONS,
    MESSAGE_PARAMS,
    _PayloadTaint,
    _SANITIZING_CALLS,
    _SHALLOW_WRAPPERS,
    _annotation_name,
    _is_sanitizing_call,
    FuncDef,
)

#: Method names never resolved through the unique-name fallback: they are
#: container/installer protocol names the taint pass already models as
#: sinks (or sanitizers), and resolving ``anything.add`` to whatever
#: class happens to define ``add`` would be a guess, not an edge.
_AMBIENT_METHOD_NAMES: Set[str] = (
    set(ALIAS_SINK_METHODS)
    | set(COPYING_SINK_METHODS)
    | set(_SANITIZING_CALLS)
    | set(_SHALLOW_WRAPPERS)
    | {
        "get", "pop", "popitem", "items", "keys", "values", "clear",
        "remove", "discard", "sort", "count", "index", "send", "schedule",
        "run", "start", "stop", "close", "register", "unregister",
    }
)


class FunctionInfo:
    """One top-level function or method in the project symbol table."""

    __slots__ = ("module", "class_name", "node", "ctx")

    def __init__(
        self,
        module: str,
        class_name: Optional[str],
        node: FuncDef,
        ctx: FileContext,
    ):
        self.module = module
        self.class_name = class_name
        self.node = node
        self.ctx = ctx

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualname(self) -> str:
        owner = f"{self.class_name}." if self.class_name else ""
        return f"{self.module}:{owner}{self.name}"

    @property
    def display(self) -> str:
        """How messages name this function, e.g. ``JoinService._absorb``."""
        owner = f"{self.class_name}." if self.class_name else ""
        return f"{owner}{self.name}"

    @property
    def params(self) -> List[str]:
        """Positional parameter names as a caller maps onto them: the
        implicit ``self``/``cls`` of a method is dropped."""
        args = self.node.args
        names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        if self.class_name and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names + [a.arg for a in args.kwonlyargs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


@dataclass(frozen=True)
class StoreSite:
    """Where (and how) a parameter's object ultimately enters node state."""

    path: str
    line: int
    how: str


@dataclass
class ParamEffect:
    """What a function does with one parameter's object identity."""

    stores: Optional[StoreSite] = None
    returns: bool = False


@dataclass
class FunctionSummary:
    """Per-parameter taint effects, composable across call edges."""

    effects: Dict[str, ParamEffect] = field(default_factory=dict)
    #: Parameters the function itself treats as incoming messages (their
    #: effect describes the fate of ``<param>.payload``).
    message_params: Set[str] = field(default_factory=set)


_EMPTY_SUMMARY = FunctionSummary()


def _is_message_param(fn: FuncDef, name: str) -> bool:
    for arg in list(fn.args.posonlyargs) + list(fn.args.args) + list(
        fn.args.kwonlyargs
    ):
        if arg.arg == name:
            ann = _annotation_name(arg.annotation)
            return name in MESSAGE_PARAMS or ann in MESSAGE_ANNOTATIONS
    return name in MESSAGE_PARAMS


class ProjectContext:
    """Parsed files + symbol table + call resolution + taint summaries."""

    def __init__(self, contexts: Sequence[FileContext]):
        self.files: List[FileContext] = list(contexts)
        self.by_module: Dict[str, FileContext] = {}
        self.imports: Dict[str, ImportMap] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._module_funcs: Dict[Tuple[str, str], FunctionInfo] = {}
        self._methods: Dict[Tuple[str, str, str], FunctionInfo] = {}
        self._by_method_name: Dict[str, List[FunctionInfo]] = {}
        self._per_file: Dict[str, List[FunctionInfo]] = {}
        self._summaries: Dict[str, FunctionSummary] = {}
        self._computing: Set[str] = set()
        for ctx in self.files:
            self._index(ctx)

    # -- symbol table -------------------------------------------------------

    def _index(self, ctx: FileContext) -> None:
        module = ctx.module
        self.by_module[module] = ctx
        self.imports[module] = ImportMap(ctx.tree)
        infos = self._per_file.setdefault(ctx.rel_path, [])
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                infos.append(self._add(FunctionInfo(module, None, node, ctx)))
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        infos.append(
                            self._add(FunctionInfo(module, node.name, sub, ctx))
                        )

    def _add(self, info: FunctionInfo) -> FunctionInfo:
        self.functions[info.qualname] = info
        if info.class_name is None:
            self._module_funcs[(info.module, info.name)] = info
        else:
            self._methods[(info.module, info.class_name, info.name)] = info
            self._by_method_name.setdefault(info.name, []).append(info)
        return info

    def functions_in(self, ctx: FileContext) -> List[FunctionInfo]:
        return self._per_file.get(ctx.rel_path, [])

    # -- conservative call resolution --------------------------------------

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> Optional[FunctionInfo]:
        """The unique project function this call targets, or None.

        Edges are only created when unambiguous; a miss means "do not
        follow", never "assume safe and assume unsafe at once".
        """
        func = call.func
        module = caller.module
        if isinstance(func, ast.Name):
            info = self._module_funcs.get((module, func.id))
            if info is not None:
                return info
            origin = self.imports[module].names.get(func.id)
            if origin and "." in origin:
                mod, _, name = origin.rpartition(".")
                return self._module_funcs.get((mod, name))
            return None
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and caller.class_name is not None
            ):
                info = self._methods.get((module, caller.class_name, func.attr))
                if info is not None:
                    return info
            qual = self.imports[module].qualify(func)
            if qual and "." in qual:
                mod, _, name = qual.rpartition(".")
                info = self._module_funcs.get((mod, name))
                if info is not None:
                    return info
            if func.attr in _AMBIENT_METHOD_NAMES:
                return None
            candidates = self._by_method_name.get(func.attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    @staticmethod
    def map_args(
        call: ast.Call, callee: FunctionInfo
    ) -> List[Tuple[str, ast.expr]]:
        """``(parameter_name, argument_expr)`` pairs for this call site.
        ``*args`` splats disable positional mapping (conservative skip)."""
        params = callee.params
        pairs: List[Tuple[str, ast.expr]] = []
        if not any(isinstance(a, ast.Starred) for a in call.args):
            for i, arg in enumerate(call.args):
                if i < len(params):
                    pairs.append((params[i], arg))
        for kw in call.keywords:
            if kw.arg is not None:
                pairs.append((kw.arg, kw.value))
        return pairs

    # -- taint summaries ----------------------------------------------------

    def summary(self, info: FunctionInfo) -> FunctionSummary:
        """The (memoized) taint summary of ``info``; cycles in the call
        graph resolve to the empty no-effect summary."""
        key = info.qualname
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._computing:
            return _EMPTY_SUMMARY
        self._computing.add(key)
        try:
            summary = self._compute_summary(info)
        finally:
            self._computing.discard(key)
        self._summaries[key] = summary
        return summary

    def _compute_summary(self, info: FunctionInfo) -> FunctionSummary:
        summary = FunctionSummary()
        for param in info.params:
            if param in ("self", "cls"):
                continue
            engine = _InterproceduralTaint(
                None, info.ctx, info.node, self, info, mode="summary",
                seed=param,
            )
            if _is_message_param(info.node, param):
                summary.message_params.add(param)
            engine.run()
            summary.effects[param] = ParamEffect(
                stores=engine.summary_sink, returns=engine.returned_taint
            )
        return summary


class _InterproceduralTaint(_PayloadTaint):
    """The per-file taint engine, extended with call-graph edges.

    Two modes share the walk:

    * ``report`` — the ISO001 project pass: local sinks the per-file
      pass could not see (taint arriving through a call return) and
      *chain* sinks (a tainted argument handed to a callee whose summary
      stores it) are reported at the caller's line;
    * ``summary`` — effect inference: sinks and return-taint are
      recorded on the engine instead of reported, seeding exactly one
      parameter at a time so effects attribute correctly.
    """

    def __init__(
        self,
        rule: Optional[Rule],
        ctx: FileContext,
        fn: FuncDef,
        project: ProjectContext,
        info: FunctionInfo,
        mode: str = "report",
        seed: Optional[str] = None,
    ):
        super().__init__(rule, ctx, fn)  # type: ignore[arg-type]
        self.project = project
        self.info = info
        self.mode = mode
        self.returned_taint = False
        self.summary_sink: Optional[StoreSite] = None
        if seed is not None:
            self.msg_params = set()
            self.tainted = set()
            if _is_message_param(fn, seed):
                self.msg_params.add(seed)
            else:
                self.tainted.add(seed)

    # -- taint through call returns ----------------------------------------

    def is_tainted(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            if _is_sanitizing_call(node):
                return False
            name = node.func.id if isinstance(node.func, ast.Name) else None
            if name in _SHALLOW_WRAPPERS and node.args:
                return self.is_tainted(node.args[0])
            callee = self.project.resolve_call(node, self.info)
            if callee is not None:
                summary = self.project.summary(callee)
                for param, arg in self.project.map_args(node, callee):
                    effect = summary.effects.get(param)
                    if (
                        effect is not None
                        and effect.returns
                        and self._arg_hot(arg, param, summary)
                    ):
                        return True
            return False
        return super().is_tainted(node)

    def _arg_hot(
        self, arg: ast.expr, param: str, summary: FunctionSummary
    ) -> bool:
        """Does this argument hand the callee a payload-aliased object —
        either the payload itself, or a whole message whose ``.payload``
        the callee (a message handler) will extract?"""
        if self.is_tainted(arg):
            return True
        return (
            isinstance(arg, ast.Name)
            and arg.id in self.msg_params
            and param in summary.message_params
        )

    # -- statement walk extensions -----------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if self.is_tainted(stmt.value):
                    self.returned_taint = True
                self._check_calls(stmt.value)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested handlers inherit message params via closure; spawn
            # the interprocedural engine, not the per-file base class.
            nested = _InterproceduralTaint(
                self.rule, self.ctx, stmt, self.project, self.info,
                mode=self.mode,
            )
            nested.msg_params |= self.msg_params
            nested.tainted |= self.tainted
            nested.run()
            if self.summary_sink is None:
                self.summary_sink = nested.summary_sink
            return
        super()._stmt(stmt)

    # -- sinks --------------------------------------------------------------

    def _call_sink(self, node: ast.Call) -> None:
        super()._call_sink(node)
        callee = self.project.resolve_call(node, self.info)
        if callee is None:
            return
        summary = self.project.summary(callee)
        for param, arg in self.project.map_args(node, callee):
            effect = summary.effects.get(param)
            if (
                effect is not None
                and effect.stores is not None
                and self._arg_hot(arg, param, summary)
            ):
                self._chain_report(node, callee, effect.stores)
                return

    def _already_reported(self, lineno: int) -> bool:
        rule_id = self.rule.id if self.rule is not None else ""
        return any(
            f.rule == rule_id and f.line == lineno
            for f in self.ctx.findings
        )

    def _report(self, node: ast.AST, how: str) -> None:
        if self.mode == "summary":
            if self.summary_sink is None:
                self.summary_sink = StoreSite(
                    self.ctx.rel_path, getattr(node, "lineno", 1), how
                )
            return
        if self._already_reported(getattr(node, "lineno", 1)):
            return  # the per-file pass already flagged this line
        super()._report(node, how)

    def _chain_report(
        self, node: ast.Call, callee: FunctionInfo, site: StoreSite
    ) -> None:
        if self.mode == "summary":
            # Propagate the *ultimate* store site up the chain so the
            # eventual finding names where the object really lands.
            if self.summary_sink is None:
                self.summary_sink = site
            return
        if self._already_reported(getattr(node, "lineno", 1)):
            return
        self.ctx.report(
            self.rule,
            node,
            f"incoming payload object escapes into {callee.display}(), "
            f"which stores it ({site.how}) into long-lived node state at "
            f"{site.path}:{site.line} without a copy — copy here at the "
            f"source call site, or inside the callee",
        )


def run_payload_taint(rule: Rule, project: ProjectContext) -> None:
    """Interprocedural ISO001: re-run payload taint over every message
    handler in the project with call-graph edges enabled."""
    for ctx in project.files:
        if not rule.applies_to(ctx):
            continue
        for info in project.functions_in(ctx):
            engine = _InterproceduralTaint(
                rule, ctx, info.node, project, info, mode="report"
            )
            if engine.msg_params or engine.tainted:
                engine.run()
