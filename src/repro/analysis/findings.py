"""The finding model: what a lint rule reports, and the baseline file.

A :class:`Finding` is one rule violation at one source location.  Its
identity for baselining purposes is the :attr:`fingerprint` — a hash of
``(rule, path, snippet)`` that deliberately excludes the line number, so
grandfathered findings survive unrelated edits that shift code up or
down.  Two identical lines in one file share a fingerprint; the baseline
therefore stores a *count* per fingerprint and absorbs up to that many
occurrences.

The JSON forms (``Finding.to_dict`` / ``Baseline`` files) are the
contract the ``repro lint --format json`` output and the committed
``detlint-baseline.json`` follow; ``tests/analysis`` round-trips them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple


def _fingerprint(rule: str, path: str, snippet: str) -> str:
    digest = hashlib.sha256(
        f"{rule}\x00{path}\x00{snippet}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line the finding anchors to (baseline identity).
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        return _fingerprint(self.rule, self.path, self.snippet)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def describe(self) -> str:
        return f"{self.location()}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "Finding":
        return cls(
            rule=str(obj["rule"]),
            path=str(obj["path"]),
            line=int(obj["line"]),
            col=int(obj["col"]),
            message=str(obj["message"]),
            snippet=str(obj.get("snippet", "")),
        )

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Grandfathered findings: fingerprint -> allowed occurrence count.

    The CI gate is "no *new* findings": a current finding is absorbed if
    its fingerprint still has budget in the baseline.  Fixing a
    grandfathered site never breaks the gate (the budget simply goes
    unused); regenerate with ``repro lint --write-baseline`` to shrink
    the file as debt is paid down.

    Because the fingerprint includes the path, a plain file *rename*
    would orphan every grandfathered entry in that file and fail the
    gate on untouched code.  :meth:`split` therefore runs a second pass:
    findings whose exact fingerprint has no budget may still be absorbed
    by an entry with the same ``(rule, snippet)`` content key (recorded
    in the entry's notes), drawing from the same per-entry budget pool.
    Exact matches are consumed first across the whole input, so a rename
    can never steal budget from a finding that still lives at its
    recorded path.
    """

    counts: Dict[str, int] = field(default_factory=dict)
    #: Human-readable context per fingerprint, for reviewing the file.
    notes: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for f in findings:
            fp = f.fingerprint
            baseline.counts[fp] = baseline.counts.get(fp, 0) + 1
            baseline.notes.setdefault(
                fp, {"rule": f.rule, "path": f.path, "snippet": f.snippet}
            )
        return baseline

    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (new, baselined).

        Pass 1 consumes exact-fingerprint budget in input order; pass 2
        lets leftovers match a ``(rule, snippet)`` content key from the
        notes — the same site in a renamed file — against whatever
        budget remains.  Output order matches input order in both lists.
        """
        ordered = list(findings)
        budget = dict(self.counts)
        content: Dict[Tuple[str, str], List[str]] = {}
        for fp, note in self.notes.items():
            if note.get("snippet"):
                content.setdefault(
                    (note.get("rule", ""), note["snippet"]), []
                ).append(fp)
        for fps in content.values():
            fps.sort()
        absorbed = [False] * len(ordered)
        pending: List[int] = []
        for i, f in enumerate(ordered):
            fp = f.fingerprint
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                absorbed[i] = True
            else:
                pending.append(i)
        for i in pending:
            f = ordered[i]
            if not f.snippet:  # never content-match blank snippets
                continue
            for fp in content.get((f.rule, f.snippet), ()):
                if budget.get(fp, 0) > 0:
                    budget[fp] -= 1
                    absorbed[i] = True
                    break
        new = [f for i, f in enumerate(ordered) if not absorbed[i]]
        grandfathered = [f for i, f in enumerate(ordered) if absorbed[i]]
        return new, grandfathered

    def to_dict(self) -> Dict[str, Any]:
        entries = []
        for fp in sorted(self.counts):
            entry: Dict[str, Any] = {"fingerprint": fp, "count": self.counts[fp]}
            entry.update(self.notes.get(fp, {}))
            entries.append(entry)
        return {"version": BASELINE_VERSION, "findings": entries}

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "Baseline":
        version = obj.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(f"unsupported baseline version {version!r}")
        baseline = cls()
        for entry in obj.get("findings", []):
            fp = str(entry["fingerprint"])
            baseline.counts[fp] = baseline.counts.get(fp, 0) + int(
                entry.get("count", 1)
            )
            baseline.notes.setdefault(
                fp,
                {
                    k: str(entry[k])
                    for k in ("rule", "path", "snippet")
                    if k in entry
                },
            )
        return baseline

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def loads(cls, text: str) -> "Baseline":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> str:
        from repro.paths import prepare_output_path

        prepare_output_path(path, what="detlint baseline")
        with open(path, "w") as fh:
            fh.write(self.dumps())
        return path

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path) as fh:
            return cls.loads(fh.read())
