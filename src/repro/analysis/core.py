"""detlint's engine: file contexts, the rule registry, and the runner.

The analyzer is a plain ``ast`` walk — no imports of the analyzed code,
no runtime dependencies — so it can lint a file that would not even
import.  Each :class:`Rule` subclass registers itself under a stable id
(``DET001`` ...) via :func:`register`; :func:`run_lint` parses each file
once into a shared :class:`FileContext` and hands it to every
applicable rule.

Suppression: a ``# detlint: ignore[RULE1,RULE2]`` comment suppresses
those rules on its own line (put it on the first line of a multi-line
statement).  ``# detlint: skip-file`` anywhere in the first ten lines
skips the whole file.  Suppressions are for *intentional* violations —
e.g. the wall-clock reads inside the profiler plumbing; accidental debt
belongs in the baseline file instead (see
:class:`repro.analysis.findings.Baseline`).
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

from repro.analysis.findings import Finding

_IGNORE_RE = re.compile(r"#\s*detlint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*detlint:\s*skip-file")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number (1-based) -> set of suppressed rule ids."""
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        match = _IGNORE_RE.search(line)
        if match is not None:
            rules = {r.strip().upper() for r in match.group(1).split(",")}
            rules.discard("")
            suppressed.setdefault(lineno, set()).update(rules)
    return suppressed


def wants_skip_file(source: str) -> bool:
    head = source.splitlines()[:10]
    return any(_SKIP_FILE_RE.search(line) for line in head)


class FileContext:
    """Everything the rules need about one parsed source file."""

    def __init__(self, path: str, source: str, rel_path: Optional[str] = None):
        self.path = path
        #: Repository-relative, ``/``-separated path — the stable form
        #: used in findings, baselines, and exemption matching.
        self.rel_path = (rel_path if rel_path is not None else path).replace(
            os.sep, "/"
        )
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.suppressed = parse_suppressions(source)
        self.findings: List[Finding] = []

    @property
    def module(self) -> str:
        """Dotted module guess from the relative path (``src/`` stripped),
        used by per-rule exemptions like "only repro.sim.rng may seed"."""
        rel = self.rel_path
        if rel.startswith("src/"):
            rel = rel[len("src/"):]
        rel = rel[:-3] if rel.endswith(".py") else rel
        module = rel.replace("/", ".")
        return module[:-9] if module.endswith(".__init__") else module

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, lineno: int, rule: str) -> bool:
        return rule.upper() in self.suppressed.get(lineno, set())

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.is_suppressed(lineno, rule.id):
            return
        self.findings.append(
            Finding(
                rule=rule.id,
                path=self.rel_path,
                line=lineno,
                col=col,
                message=message,
                snippet=self.snippet(lineno),
            )
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`id`/:attr:`title`/:attr:`rationale`, optionally
    :attr:`exempt_modules` (dotted prefixes the rule never applies to),
    and implement :meth:`check`.
    """

    id: str = ""
    title: str = ""
    #: Which bug class the rule exists to prevent (shown by ``--explain``).
    rationale: str = ""
    #: Dotted module prefixes the rule does not apply to.
    exempt_modules: Sequence[str] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        module = ctx.module
        for prefix in self.exempt_modules:
            if module == prefix or module.startswith(prefix + "."):
                return False
        # Benchmarks and tests measure and provoke; the contracts bind
        # the simulator itself.
        top = ctx.rel_path.split("/", 1)[0]
        return top not in ("benchmarks", "tests")

    def check(self, ctx: FileContext) -> None:
        raise NotImplementedError

    def check_project(self, project) -> None:
        """Whole-project pass over a :class:`repro.analysis.project.
        ProjectContext`.  Runs after every per-file :meth:`check`;
        findings are reported through each file's own context (so
        per-line suppression and ``applies_to`` exemptions still hold).
        Default: nothing — most rules are purely local."""


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry by id."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_catalog() -> List[Rule]:
    """Alias of :func:`all_rules` for documentation/CLI listings."""
    return all_rules()


def iter_python_files(paths: Iterable[str], root: Optional[str] = None) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.add(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            out.add(path)
    return sorted(out)


def _rel_path(path: str, root: Optional[str]) -> str:
    base = root if root is not None else os.getcwd()
    try:
        rel = os.path.relpath(os.path.abspath(path), os.path.abspath(base))
    except ValueError:  # pragma: no cover - different drive on Windows
        return path
    return path if rel.startswith("..") else rel


def _check_contexts(
    contexts: Sequence[FileContext],
    rules: Sequence[Rule],
    project: bool,
) -> List[Finding]:
    """Run the per-file rules, then (optionally) the whole-project pass,
    over already-parsed file contexts; collect deduplicated findings."""
    for ctx in contexts:
        for rule in rules:
            if rule.applies_to(ctx):
                rule.check(ctx)
    if project and contexts:
        from repro.analysis.project import ProjectContext

        proj = ProjectContext(contexts)
        for rule in rules:
            rule.check_project(proj)
    findings: List[Finding] = []
    for ctx in contexts:
        # Findings are frozen/hashable: drop exact duplicates (a rule may
        # legitimately revisit one node from two walks).
        findings.extend(dict.fromkeys(ctx.findings))
    return sorted(findings, key=Finding.sort_key)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    rel_path: Optional[str] = None,
    project: bool = True,
) -> List[Finding]:
    """Lint one source string (the test-fixture entry point).  The
    project pass runs over the single file, so intra-module call chains
    are followed interprocedurally even here."""
    active = list(rules) if rules is not None else all_rules()
    if wants_skip_file(source):
        return []
    ctx = FileContext(path, source, rel_path=rel_path)
    return _check_contexts([ctx], active, project=project)


def lint_project_sources(
    sources: Dict[str, str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a dict of ``rel_path -> source`` as one project (the
    multi-file fixture entry point for cross-module analysis tests)."""
    active = list(rules) if rules is not None else all_rules()
    contexts = [
        FileContext(rel_path, source, rel_path=rel_path)
        for rel_path, source in sorted(sources.items())
        if not wants_skip_file(source)
    ]
    return _check_contexts(contexts, active, project=True)


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[str] = None,
    project: bool = True,
) -> List[Finding]:
    """Lint files/directories; returns all findings, sorted and
    suppression-filtered (baseline filtering is the caller's job).
    ``project=False`` skips the whole-project pass (used by the
    incremental ``--changed`` mode, where the file set is partial by
    construction)."""
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    contexts: List[FileContext] = []
    for path in iter_python_files(paths, root=root):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        if wants_skip_file(source):
            continue
        try:
            contexts.append(
                FileContext(path, source, rel_path=_rel_path(path, root))
            )
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="PARSE",
                    path=_rel_path(path, root).replace(os.sep, "/"),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    snippet="",
                )
            )
    findings.extend(_check_contexts(contexts, active, project=project))
    return sorted(findings, key=Finding.sort_key)
