"""repro.analysis — detlint, the determinism & LP-isolation analyzer.

A small AST-walking lint framework plus a rule pack encoding this
repository's correctness contracts (DESIGN.md §13):

=======  =============================================================
DET001   no wall-clock reads outside ``repro.obs.profile``/benchmarks
DET002   no process-global or unseeded RNG outside ``repro.sim.rng``
DET003   no set/``dict.keys()`` iteration feeding protocol decisions
DET004   no float accumulation over unordered collections feeding
         metrics or protocol state
ISO001   message payload objects are copied, never aliased, into state
         — checked per-file *and* interprocedurally through helper
         calls, return values, and handler handoffs (``project.py``)
ISO002   services touch peer state only through the ``NodeContext``
ISO003   no mutable module/class state reachable from multiple LPs
OBS001   every span opened with ``start()`` is ended on all paths
OBS002   metric names are registered before use
WIRE001  message construction sites match the wire body schemas in
         ``repro.kernel.schema`` (all 17 kinds)
=======  =============================================================

Run it as ``repro lint src/repro`` (see ``repro lint --help``); findings
can be suppressed per line (``# detlint: ignore[RULE]``) or
grandfathered in ``detlint-baseline.json`` so CI gates only on *new*
findings.  ``repro lint --changed <git-ref>`` lints only the files
changed versus a ref (per-file rules only).

The static rules have a runtime twin: :mod:`repro.analysis.detsan`, an
opt-in sanitizer (``REPRO_DETSAN=1`` or ``repro chaos --detsan``) that
tags payload object identities at the transport boundary and trips when
one is retained, un-copied, in any node's state — cross-validating
ISO001/ISO003 against what actually happens under chaos.
"""

from repro.analysis.core import (
    FileContext,
    Rule,
    all_rules,
    lint_project_sources,
    lint_source,
    register,
    rule_catalog,
    run_lint,
)
from repro.analysis.findings import Baseline, Finding

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "lint_project_sources",
    "lint_source",
    "register",
    "rule_catalog",
    "run_lint",
]
