"""repro.analysis — detlint, the determinism & LP-isolation analyzer.

A small AST-walking lint framework plus a rule pack encoding this
repository's correctness contracts (DESIGN.md §13):

======  ==============================================================
DET001  no wall-clock reads outside ``repro.obs.profile``/benchmarks
DET002  no process-global or unseeded RNG outside ``repro.sim.rng``
DET003  no set/``dict.keys()`` iteration feeding protocol decisions
ISO001  message payload objects are copied, never aliased, into state
ISO002  services touch peer state only through the ``NodeContext``
OBS001  every span opened with ``start()`` is ended on all paths
======  ==============================================================

Run it as ``repro lint src/repro`` (see ``repro lint --help``); findings
can be suppressed per line (``# detlint: ignore[RULE]``) or
grandfathered in ``detlint-baseline.json`` so CI gates only on *new*
findings.
"""

from repro.analysis.core import (
    FileContext,
    Rule,
    all_rules,
    lint_source,
    register,
    rule_catalog,
    run_lint,
)
from repro.analysis.findings import Baseline, Finding

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "lint_source",
    "register",
    "rule_catalog",
    "run_lint",
]
