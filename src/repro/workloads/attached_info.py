"""Attached-info generators for the usage scenarios of §3.

PeerWindow pointers carry *"a piece of attached info that can be specified
by upper applications"*.  §3 enumerates the applications; these generators
produce realistic attached-info values for each:

* GUESS [19]: number of shared files (Zipf-like, most peers share little,
  a few share a lot — the free-riding measurement result).
* Backup systems [4][10]: operating-system version strings.
* Load balancing [6]: current load factor.
* Bidding systems [5]: storage space / availability / asking price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

OS_VERSIONS: List[str] = [
    "windows-xp",
    "windows-2000",
    "windows-98",
    "linux-2.4",
    "linux-2.6",
    "macos-9",
    "macos-x",
    "freebsd-4",
]

#: Rough popularity mix of desktop OSes circa the paper (2005); only the
#: *diversity*, not the exact shares, matters to the backup scenario.
OS_WEIGHTS: List[float] = [0.45, 0.15, 0.08, 0.08, 0.10, 0.04, 0.07, 0.03]


def sample_os_versions(rng: np.random.Generator, n: int) -> List[str]:
    probs = np.array(OS_WEIGHTS) / sum(OS_WEIGHTS)
    idx = rng.choice(len(OS_VERSIONS), size=n, p=probs)
    return [OS_VERSIONS[i] for i in idx]


def sample_shared_files(rng: np.random.Generator, n: int, a: float = 1.6) -> np.ndarray:
    """Zipf-distributed shared-file counts; ~25% free riders (0 files)."""
    counts = rng.zipf(a, size=n).astype(np.int64)
    counts = np.minimum(counts * 10, 100_000)
    free_riders = rng.random(n) < 0.25
    counts[free_riders] = 0
    return counts


def sample_load(rng: np.random.Generator, n: int) -> np.ndarray:
    """Load factors in [0, 1+): lognormal around 0.5, occasionally > 1
    (overloaded nodes that the load balancer must relieve)."""
    return rng.lognormal(mean=np.log(0.5), sigma=0.6, size=n)


@dataclass(frozen=True)
class BidInfo:
    """Attached info for the storage-bidding scenario [5]."""

    storage_gb: float
    availability: float  # fraction of time online, in [0, 1]
    price_per_gb: float

    def __post_init__(self) -> None:
        if self.storage_gb < 0 or not 0 <= self.availability <= 1 or self.price_per_gb < 0:
            raise ValueError("invalid BidInfo fields")


def sample_bids(rng: np.random.Generator, n: int) -> List[BidInfo]:
    storage = rng.lognormal(np.log(20.0), 1.0, size=n)
    avail = np.clip(rng.beta(4.0, 2.0, size=n), 0.0, 1.0)
    price = rng.lognormal(np.log(1.0), 0.5, size=n)
    return [
        BidInfo(float(s), float(a), float(p))
        for s, a, p in zip(storage, avail, price)
    ]


def guess_attached_info(rng: np.random.Generator, n: int) -> List[Dict[str, int]]:
    """Per-node attached info dict for the GUESS scenario."""
    files = sample_shared_files(rng, n)
    return [{"shared_files": int(f)} for f in files]


def backup_attached_info(rng: np.random.Generator, n: int) -> List[Dict[str, str]]:
    return [{"os": os} for os in sample_os_versions(rng, n)]


def load_attached_info(rng: np.random.Generator, n: int) -> List[Dict[str, float]]:
    return [{"load": float(x)} for x in sample_load(rng, n)]


def bid_attached_info(rng: np.random.Generator, n: int) -> List[Dict[str, object]]:
    return [{"bid": b} for b in sample_bids(rng, n)]
