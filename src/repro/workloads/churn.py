"""Churn generation: Poisson joins, lifetime-driven leaves.

§5.1: *"Nodes join the system in a Poisson process, with the expectation of
the time interval of two successive node joining events is 100,000/135
minutes"* — i.e. the arrival rate is ``N_target / mean_lifetime``, which by
Little's law holds the stationary population at ``N_target``.

Two forms are provided:

* :func:`generate_sessions` — a vectorized trace generator producing
  ``Session`` records (join time, lifetime, bandwidth, threshold) for the
  scalable engine; O(n) NumPy, no Python loop.
* :class:`ChurnProcess` — an online driver for the detailed engine: it
  schedules one join at a time on a :class:`~repro.sim.engine.Simulator`
  and invokes callbacks, so protocol joins/leaves happen in event order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.workloads.bandwidth_dist import (
    GnutellaBandwidthDistribution,
    threshold_from_bandwidth,
)
from repro.workloads.lifetime import GnutellaLifetimeDistribution, LifetimeDistribution


@dataclass(frozen=True)
class Session:
    """One node session in a churn trace."""

    join_time: float
    lifetime: float
    bandwidth_bps: float
    threshold_bps: float

    @property
    def leave_time(self) -> float:
        return self.join_time + self.lifetime


def generate_sessions(
    rng: np.random.Generator,
    n_target: int,
    duration: float,
    lifetime_dist: Optional[LifetimeDistribution] = None,
    bandwidth_dist: Optional[GnutellaBandwidthDistribution] = None,
    warm_population: bool = True,
) -> List[Session]:
    """Generate a churn trace holding the population near ``n_target``.

    When ``warm_population`` is true, ``n_target`` initial nodes exist at
    t=0 with *residual* lifetimes (sampled from the full distribution —
    an approximation of the stationary residual; the scalable engine
    discards a warm-up prefix before measuring, so the residual bias does
    not reach the figures).  Poisson arrivals at rate
    ``n_target / mean_lifetime`` then run for ``duration`` seconds.
    """
    if n_target < 1:
        raise ValueError("n_target must be >= 1")
    if duration < 0:
        raise ValueError("duration must be >= 0")
    lifetime_dist = lifetime_dist or GnutellaLifetimeDistribution()
    bandwidth_dist = bandwidth_dist or GnutellaBandwidthDistribution()

    join_times: List[np.ndarray] = []
    if warm_population:
        join_times.append(np.zeros(n_target))
    rate = n_target / lifetime_dist.mean
    n_arrivals = rng.poisson(rate * duration) if duration > 0 else 0
    if n_arrivals > 0:
        arrivals = np.sort(rng.uniform(0.0, duration, size=n_arrivals))
        join_times.append(arrivals)
    joins = np.concatenate(join_times) if join_times else np.empty(0)
    n = joins.size
    lifetimes = lifetime_dist.sample(rng, n)
    bandwidths = np.asarray(bandwidth_dist.sample(rng, n))
    thresholds = threshold_from_bandwidth(bandwidths)
    return [
        Session(float(j), float(lt), float(bw), float(th))
        for j, lt, bw, th in zip(joins, lifetimes, bandwidths, thresholds)
    ]


class ChurnProcess:
    """Online churn driver for the detailed engine.

    ``on_join(session) -> key`` is called at each arrival and must return a
    key identifying the joined node; ``on_leave(key)`` is called when its
    lifetime expires.  The driver stops scheduling new arrivals after
    ``stop()`` (already-scheduled leaves still fire).
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        n_target: int,
        on_join: Callable[[Session], object],
        on_leave: Callable[[object], None],
        lifetime_dist: Optional[LifetimeDistribution] = None,
        bandwidth_dist: Optional[GnutellaBandwidthDistribution] = None,
    ):
        if n_target < 1:
            raise ValueError("n_target must be >= 1")
        self.sim = sim
        self.rng = rng
        self.n_target = n_target
        self.on_join = on_join
        self.on_leave = on_leave
        self.lifetime_dist = lifetime_dist or GnutellaLifetimeDistribution()
        self.bandwidth_dist = bandwidth_dist or GnutellaBandwidthDistribution()
        self._stopped = False
        self.joins = 0
        self.leaves = 0

    @property
    def arrival_rate(self) -> float:
        return self.n_target / self.lifetime_dist.mean

    def start(self) -> None:
        """Begin Poisson arrivals (first arrival after one exponential gap)."""
        self._schedule_next_join()

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next_join(self) -> None:
        if self._stopped:
            return
        gap = float(self.rng.exponential(1.0 / self.arrival_rate))
        self.sim.schedule(gap, self._do_join)

    def _do_join(self) -> None:
        if self._stopped:
            return
        session = Session(
            join_time=self.sim.now,
            lifetime=float(self.lifetime_dist.sample(self.rng)),
            bandwidth_bps=float(self.bandwidth_dist.sample(self.rng)),
            threshold_bps=0.0,  # filled below for dataclass immutability
        )
        session = Session(
            session.join_time,
            session.lifetime,
            session.bandwidth_bps,
            float(threshold_from_bandwidth(session.bandwidth_bps)),
        )
        key = self.on_join(session)
        self.joins += 1
        if key is not None:
            self.sim.schedule(session.lifetime, self._do_leave, key)
        self._schedule_next_join()

    def _do_leave(self, key: object) -> None:
        self.leaves += 1
        self.on_leave(key)
