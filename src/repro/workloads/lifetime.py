"""Node-lifetime distributions.

The common experiment (§5.1) requires: *"Distribution of nodes' lifetime
meets the measurement results of Gnutella (figure 6 of [13]), in which the
average lifetime is about 135 minutes."*

Saroiu et al.'s session-duration distribution is heavy-tailed with a
median around one hour.  :class:`GnutellaLifetimeDistribution` models it as
a lognormal pinned at those two anchors:

* median = 60 minutes  →  ``mu = ln(3600)``
* mean   = 135 minutes →  ``sigma = sqrt(2 ln(135/60)) ≈ 1.2735``

(the lognormal mean is ``exp(mu + sigma^2/2)``, so both anchors are hit
exactly).  The adaptivity experiments (§5.3) scale every lifetime by
``Lifetime_Rate``, which is a plain multiplicative parameter here.

Exponential and Weibull alternatives are provided for ablations (the
protocol's refresh mechanism and error model are distribution-sensitive,
so it is worth checking the figures' shapes hold beyond the lognormal).
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

#: Seconds per minute, for readability of anchor constants.
_MIN = 60.0

#: The paper's common-case mean lifetime (135 minutes, §5.1).
COMMON_MEAN_LIFETIME_S = 135.0 * _MIN

#: Saroiu et al. median session duration (~60 minutes).
GNUTELLA_MEDIAN_S = 60.0 * _MIN


class LifetimeDistribution(abc.ABC):
    """Sampling interface for node session lifetimes, in seconds."""

    def __init__(self, lifetime_rate: float = 1.0):
        if lifetime_rate <= 0:
            raise ValueError("lifetime_rate must be positive")
        self.lifetime_rate = float(lifetime_rate)

    @abc.abstractmethod
    def _base_mean(self) -> float:
        """Mean of the unscaled distribution, seconds."""

    @abc.abstractmethod
    def _base_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` unscaled samples."""

    @property
    def mean(self) -> float:
        return self._base_mean() * self.lifetime_rate

    def sample(self, rng: np.random.Generator, n: Optional[int] = None):
        """Sample lifetimes (seconds).  Scalar when ``n`` is None."""
        if n is None:
            return float(self._base_sample(rng, 1)[0] * self.lifetime_rate)
        if n < 0:
            raise ValueError("n must be non-negative")
        return self._base_sample(rng, n) * self.lifetime_rate

    def sample_residual(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Residual lifetimes for a stationary initial population.

        A node alive at an arbitrary observation instant was sampled with
        probability proportional to its session length (length biasing),
        and the observation lands uniformly inside the session.  The
        generic implementation does weighted resampling from a candidate
        pool; subclasses with closed forms may override.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return np.empty(0)
        pool = self._base_sample(rng, max(4 * n, 1024))
        weights = pool / pool.sum()
        chosen = rng.choice(pool, size=n, p=weights)
        return chosen * rng.random(n) * self.lifetime_rate

    def scaled(self, lifetime_rate: float) -> "LifetimeDistribution":
        """A copy with a different ``Lifetime_Rate`` (figures 11/12 sweep)."""
        import copy

        clone = copy.copy(self)
        if lifetime_rate <= 0:
            raise ValueError("lifetime_rate must be positive")
        clone.lifetime_rate = float(lifetime_rate)
        return clone


class GnutellaLifetimeDistribution(LifetimeDistribution):
    """Lognormal fit to the Gnutella session-duration measurement [13]."""

    def __init__(self, lifetime_rate: float = 1.0):
        super().__init__(lifetime_rate)
        self.mu = math.log(GNUTELLA_MEDIAN_S)
        ratio = COMMON_MEAN_LIFETIME_S / GNUTELLA_MEDIAN_S
        self.sigma = math.sqrt(2.0 * math.log(ratio))

    def _base_mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma**2)

    def _base_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def sample_residual(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Closed form: the length-biased version of Lognormal(mu, sigma)
        is Lognormal(mu + sigma^2, sigma); the residual is uniform inside
        the biased session."""
        if n < 0:
            raise ValueError("n must be non-negative")
        biased = rng.lognormal(self.mu + self.sigma**2, self.sigma, size=n)
        return biased * rng.random(n) * self.lifetime_rate

    def median(self) -> float:
        return math.exp(self.mu) * self.lifetime_rate


class ExponentialLifetime(LifetimeDistribution):
    """Memoryless lifetimes with the given mean (ablation alternative)."""

    def __init__(self, mean: float = COMMON_MEAN_LIFETIME_S, lifetime_rate: float = 1.0):
        super().__init__(lifetime_rate)
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = float(mean)

    def _base_mean(self) -> float:
        return self._mean

    def _base_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    def sample_residual(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Memoryless: the residual is the full distribution."""
        return self.sample(rng, n)


class WeibullLifetime(LifetimeDistribution):
    """Weibull lifetimes (shape < 1 gives the heavy tail churn studies
    report); scale is solved from the requested mean."""

    def __init__(
        self,
        mean: float = COMMON_MEAN_LIFETIME_S,
        shape: float = 0.6,
        lifetime_rate: float = 1.0,
    ):
        super().__init__(lifetime_rate)
        if mean <= 0 or shape <= 0:
            raise ValueError("mean and shape must be positive")
        self.shape = float(shape)
        self.scale = mean / math.gamma(1.0 + 1.0 / shape)

    def _base_mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def _base_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)
