"""Churn-trace persistence: record and replay session workloads.

The paper's experiments are driven by synthetic churn regenerated from
distributions; real reproduction work also needs *fixed* workloads — the
same trace replayed against protocol variants so differences are caused
by the protocol, not by the draw.  This module round-trips
:class:`~repro.workloads.churn.Session` lists through CSV:

* :func:`save_trace` / :func:`load_trace` — the file format (one session
  per row: join time, lifetime, bandwidth, threshold);
* :class:`TraceReplayer` — drives the detailed engine's join/leave
  callbacks from a loaded trace, in event order, like
  :class:`~repro.workloads.churn.ChurnProcess` but deterministic.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, List, Union

from repro.sim.engine import Simulator
from repro.workloads.churn import Session

_FIELDS = ["join_time", "lifetime", "bandwidth_bps", "threshold_bps"]


def save_trace(path: Union[str, Path], sessions: List[Session]) -> None:
    """Write sessions as CSV (sorted by join time for readability)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FIELDS)
        for s in sorted(sessions, key=lambda x: x.join_time):
            writer.writerow([s.join_time, s.lifetime, s.bandwidth_bps, s.threshold_bps])


def load_trace(path: Union[str, Path]) -> List[Session]:
    """Read a trace written by :func:`save_trace`."""
    out: List[Session] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames != _FIELDS:
            raise ValueError(
                f"not a churn trace: header {reader.fieldnames!r} != {_FIELDS!r}"
            )
        for row in reader:
            out.append(
                Session(
                    join_time=float(row["join_time"]),
                    lifetime=float(row["lifetime"]),
                    bandwidth_bps=float(row["bandwidth_bps"]),
                    threshold_bps=float(row["threshold_bps"]),
                )
            )
    return out


class TraceReplayer:
    """Replay a recorded trace against join/leave callbacks.

    Sessions with ``join_time == 0`` are treated as the seed population
    and handed to ``on_seed`` as one batch; later sessions are scheduled
    as individual joins, each followed by its leave after ``lifetime``.
    """

    def __init__(
        self,
        sim: Simulator,
        sessions: List[Session],
        on_join: Callable[[Session], object],
        on_leave: Callable[[object], None],
    ):
        self.sim = sim
        self.sessions = sorted(sessions, key=lambda s: s.join_time)
        self.on_join = on_join
        self.on_leave = on_leave
        self.joins = 0
        self.leaves = 0

    def seed_sessions(self) -> List[Session]:
        return [s for s in self.sessions if s.join_time == 0.0]

    def start(self) -> None:
        """Schedule every arrival and departure."""
        for session in self.sessions:
            if session.join_time == 0.0:
                key = self.on_join(session)
                self.joins += 1
                if key is not None:
                    self.sim.schedule(session.lifetime, self._leave, key)
            else:
                self.sim.schedule(session.join_time, self._join, session)

    def _join(self, session: Session) -> None:
        key = self.on_join(session)
        self.joins += 1
        if key is not None:
            self.sim.schedule(session.lifetime, self._leave, key)

    def _leave(self, key: object) -> None:
        self.leaves += 1
        self.on_leave(key)
