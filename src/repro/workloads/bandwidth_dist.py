"""Node available-bandwidth distribution.

The common experiment (§5.1) requires: *"Distribution of nodes' available
bandwidth meets the measurement results of Gnutella (figure 3 of [13])."*
Discussing figure 5 the paper adds the anchor we can verify: *"only 20%
nodes' available bandwidth is less than 1 Mbps."*

We digitise the well-known access-technology mix behind Saroiu et al.'s
figure 3 into weighted categories, with log-uniform jitter inside each
category so the CDF is smooth rather than a staircase:

=================  ==========  =====================
category           weight      bandwidth range (bps)
=================  ==========  =====================
modem              5 %         33.6 k – 56 k
ISDN / slow DSL    7 %         64 k – 256 k
DSL                8 %         256 k – 1 M
cable              30 %        1 M – 3 M
fast cable / T1    30 %        3 M – 10 M
Ethernet           15 %        10 M – 100 M
campus / T3        5 %         100 M – 1 G
=================  ==========  =====================

Cumulative weight below 1 Mbps = 5 + 7 + 8 = 20 %, matching the paper's
anchor exactly (a test enforces it).

The experiment then derives each node's *user-set upper bandwidth
threshold* as ``max(0.01 * bandwidth, 500)`` bps (§5.1): 1 % of the node's
total bandwidth but never below 500 bps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

#: Paper §5.1: the threshold floor affordable "even for modem-linked nodes".
THRESHOLD_FLOOR_BPS = 500.0

#: Paper §5.1: threshold is 1% of the node's total bandwidth.
THRESHOLD_FRACTION = 0.01


@dataclass(frozen=True)
class BandwidthCategory:
    """One access-technology class of the digitised distribution."""

    name: str
    weight: float
    low_bps: float
    high_bps: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        if not 0 < self.low_bps <= self.high_bps:
            raise ValueError("need 0 < low_bps <= high_bps")


GNUTELLA_CATEGORIES: List[BandwidthCategory] = [
    BandwidthCategory("modem", 0.05, 33_600, 56_000),
    BandwidthCategory("isdn-slow-dsl", 0.07, 64_000, 256_000),
    BandwidthCategory("dsl", 0.08, 256_000, 1_000_000),
    BandwidthCategory("cable", 0.30, 1_000_000, 3_000_000),
    BandwidthCategory("fast-cable-t1", 0.30, 3_000_000, 10_000_000),
    BandwidthCategory("ethernet", 0.15, 10_000_000, 100_000_000),
    BandwidthCategory("campus-t3", 0.05, 100_000_000, 1_000_000_000),
]


class GnutellaBandwidthDistribution:
    """Categorical-with-jitter model of Gnutella peers' available bandwidth."""

    def __init__(self, categories: Optional[Sequence[BandwidthCategory]] = None):
        cats = list(categories) if categories is not None else list(GNUTELLA_CATEGORIES)
        if not cats:
            raise ValueError("need at least one category")
        total = sum(c.weight for c in cats)
        if total <= 0:
            raise ValueError("total weight must be positive")
        self.categories = cats
        self._probs = np.array([c.weight / total for c in cats])
        self._log_low = np.log(np.array([c.low_bps for c in cats]))
        self._log_high = np.log(np.array([c.high_bps for c in cats]))

    def sample(self, rng: np.random.Generator, n: Optional[int] = None):
        """Sample available bandwidth in bps (scalar when ``n`` is None)."""
        scalar = n is None
        size = 1 if scalar else int(n)
        if size < 0:
            raise ValueError("n must be non-negative")
        idx = rng.choice(len(self.categories), size=size, p=self._probs)
        u = rng.random(size)
        out = np.exp(self._log_low[idx] + u * (self._log_high[idx] - self._log_low[idx]))
        return float(out[0]) if scalar else out

    def fraction_below(self, bps: float) -> float:
        """Exact model probability that a node's bandwidth is < ``bps``."""
        total = 0.0
        for cat, p in zip(self.categories, self._probs):
            if cat.high_bps <= bps:
                total += p
            elif cat.low_bps < bps:
                # log-uniform within the category
                frac = (np.log(bps) - np.log(cat.low_bps)) / (
                    np.log(cat.high_bps) - np.log(cat.low_bps)
                )
                total += p * float(frac)
        return total


def threshold_from_bandwidth(
    bandwidth_bps,
    fraction: float = THRESHOLD_FRACTION,
    floor_bps: float = THRESHOLD_FLOOR_BPS,
):
    """The user-set upper bandwidth threshold for node collection (§5.1):
    ``fraction`` of total bandwidth, floored at ``floor_bps``.  Vectorized."""
    if fraction <= 0 or floor_bps < 0:
        raise ValueError("fraction must be positive and floor non-negative")
    return np.maximum(np.asarray(bandwidth_bps) * fraction, floor_bps)
