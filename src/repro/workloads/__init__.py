"""Workload substrate: Gnutella-measurement distributions and churn.

The paper drives its common experiment with the Saroiu et al. MMCN'02
Gnutella measurements [13]:

* node **lifetimes** follow figure 6 of [13] with a mean of ~135 minutes;
* node **available bandwidth** follows figure 3 of [13], of which the
  paper quotes the anchor *"only 20% nodes' available bandwidth is less
  than 1 Mbps"*;
* nodes **join in a Poisson process** whose rate balances the departure
  rate so the population hovers at the target scale.

We do not have the raw traces (they were never released), so
:mod:`~repro.workloads.lifetime` and :mod:`~repro.workloads.bandwidth_dist`
implement digitised empirical models anchored at the values the paper
quotes; the anchors are enforced by tests.  See DESIGN.md §2 for the
substitution rationale.
"""

from repro.workloads.bandwidth_dist import (
    BandwidthCategory,
    GnutellaBandwidthDistribution,
)
from repro.workloads.churn import ChurnProcess, Session, generate_sessions
from repro.workloads.trace import TraceReplayer, load_trace, save_trace
from repro.workloads.lifetime import (
    ExponentialLifetime,
    GnutellaLifetimeDistribution,
    LifetimeDistribution,
    WeibullLifetime,
)

__all__ = [
    "BandwidthCategory",
    "ChurnProcess",
    "ExponentialLifetime",
    "GnutellaBandwidthDistribution",
    "GnutellaLifetimeDistribution",
    "LifetimeDistribution",
    "Session",
    "TraceReplayer",
    "WeibullLifetime",
    "generate_sessions",
    "load_trace",
    "save_trace",
]
