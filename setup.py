# Legacy shim for offline environments whose pip lacks the `wheel`
# package (PEP 660 editable installs need it): `python setup.py develop`
# installs the package without network access.
from setuptools import setup

setup()
