#!/usr/bin/env bash
# Repo check: lint (if ruff is available) + the tier-1 test suite.
#
#   scripts/check.sh            # lint + tests
#   scripts/check.sh --lint     # lint only
#   scripts/check.sh --tests    # tests only
set -u
cd "$(dirname "$0")/.."

run_lint=1
run_tests=1
case "${1:-}" in
  --lint) run_tests=0 ;;
  --tests) run_lint=0 ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--lint|--tests]" >&2; exit 2 ;;
esac

status=0

if [ "$run_lint" = 1 ]; then
  if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples scripts || status=1
  else
    echo "== ruff not installed; skipping lint (pip install ruff) =="
  fi
fi

if [ "$run_tests" = 1 ]; then
  echo "== tier-1 tests =="
  PYTHONPATH=src python -m pytest -x -q || status=1
fi

exit $status
