#!/usr/bin/env bash
# Repo check: lint (if ruff is available) + mypy (if installed) + the
# detlint static analysis gate + the tier-1 test suite + a fast chaos
# smoke scenario (< 60 s, SLO-judged via --health default) + an
# observability smoke (200-node instrumented run whose span export must
# pass the schema validator) + a health smoke (200-node run -> span
# analytics -> `repro obs report` must come back HEALTHY) + a live smoke
# (small localhost UDP swarm -> merged span/metrics export -> `repro obs
# health` must exit 0 on the same default HealthSpec the sim is judged
# by) + a byzantine smoke (one eclipse + one forged-obituary adversarial
# scenario with the DESIGN §16 hardening enabled; both must come back
# HEALTHY under the byzantine SLO bands) + a watch smoke (200-node
# seeded run streaming telemetry frames to --snapshot-jsonl; every
# frame must satisfy the telemetry schema and the final frame's verdict
# must agree with `repro obs health` over the same run's exports) + a
# compare smoke (2-protocol 40-node seeded tournament via `repro
# compare`; must exit 0 and produce a schema-valid `repro.compare`
# scorecard JSON).
#
#   scripts/check.sh             # everything below
#   scripts/check.sh --lint      # ruff + mypy only
#   scripts/check.sh --analysis  # detlint gate (no NEW findings vs
#                                # detlint-baseline.json, JSON report
#                                # artifact) + DetSan chaos smoke
#   scripts/check.sh --tests     # tests only
#   scripts/check.sh --chaos     # chaos smoke only
#   scripts/check.sh --byzantine # byzantine smoke only
#   scripts/check.sh --obs       # obs smoke only
#   scripts/check.sh --health    # health smoke only
#   scripts/check.sh --live      # live swarm smoke only
#   scripts/check.sh --watch     # streaming telemetry smoke only
#   scripts/check.sh --compare   # tournament scorecard smoke only
set -u
cd "$(dirname "$0")/.."

run_lint=1
run_analysis=1
run_tests=1
run_chaos=1
run_byzantine=1
run_obs=1
run_health=1
run_live=1
run_watch=1
run_compare=1
case "${1:-}" in
  --lint) run_analysis=0; run_tests=0; run_chaos=0; run_byzantine=0; run_obs=0; run_health=0; run_live=0; run_watch=0; run_compare=0 ;;
  --analysis) run_lint=0; run_tests=0; run_chaos=0; run_byzantine=0; run_obs=0; run_health=0; run_live=0; run_watch=0; run_compare=0 ;;
  --tests) run_lint=0; run_analysis=0; run_chaos=0; run_byzantine=0; run_obs=0; run_health=0; run_live=0; run_watch=0; run_compare=0 ;;
  --chaos) run_lint=0; run_analysis=0; run_tests=0; run_byzantine=0; run_obs=0; run_health=0; run_live=0; run_watch=0; run_compare=0 ;;
  --byzantine) run_lint=0; run_analysis=0; run_tests=0; run_chaos=0; run_obs=0; run_health=0; run_live=0; run_watch=0; run_compare=0 ;;
  --obs) run_lint=0; run_analysis=0; run_tests=0; run_chaos=0; run_byzantine=0; run_health=0; run_live=0; run_watch=0; run_compare=0 ;;
  --health) run_lint=0; run_analysis=0; run_tests=0; run_chaos=0; run_byzantine=0; run_obs=0; run_live=0; run_watch=0; run_compare=0 ;;
  --live) run_lint=0; run_analysis=0; run_tests=0; run_chaos=0; run_byzantine=0; run_obs=0; run_health=0; run_watch=0; run_compare=0 ;;
  --watch) run_lint=0; run_analysis=0; run_tests=0; run_chaos=0; run_byzantine=0; run_obs=0; run_health=0; run_live=0; run_compare=0 ;;
  --compare) run_lint=0; run_analysis=0; run_tests=0; run_chaos=0; run_byzantine=0; run_obs=0; run_health=0; run_live=0; run_watch=0 ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--lint|--analysis|--tests|--chaos|--byzantine|--obs|--health|--live|--watch|--compare]" >&2; exit 2 ;;
esac

status=0

if [ "$run_lint" = 1 ]; then
  if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples scripts || status=1
  else
    echo "== ruff not installed; skipping lint (pip install ruff) =="
  fi
  if command -v mypy >/dev/null 2>&1; then
    echo "== mypy (strict on repro.analysis) =="
    mypy src/repro || status=1
  else
    echo "== mypy not installed; skipping type check (pip install mypy) =="
  fi
fi

if [ "$run_analysis" = 1 ]; then
  echo "== detlint (determinism & LP-isolation static analysis) =="
  analysis_dir="$(mktemp -d)"
  trap 'rm -rf "${analysis_dir:-}"' EXIT
  PYTHONPATH=src python -m repro lint src/repro \
    --baseline detlint-baseline.json \
    --format json --report "$analysis_dir/lint-report.json" || status=1
  PYTHONPATH=src python - "$analysis_dir/lint-report.json" <<'PY' || status=1
import json, sys
report = json.load(open(sys.argv[1]))
rules = report.get("checked_rules", [])
print(f"lint report: {len(report.get('findings', []))} finding(s), "
      f"{len(rules)} rule(s)")
sys.exit(0 if rules else 1)
PY
  if PYTHONPATH=src python -c "import numpy" >/dev/null 2>&1; then
    echo "== detsan smoke (crash_churn chaos under the runtime sanitizer) =="
    if command -v timeout >/dev/null 2>&1; then
      timeout 120 env PYTHONPATH=src python -m repro chaos \
        --scenario crash_churn --detsan --seed 0 || status=1
    else
      PYTHONPATH=src python -m repro chaos --scenario crash_churn \
        --detsan --seed 0 || status=1
    fi
  else
    echo "== numpy not installed; skipping detsan smoke =="
  fi
fi

if [ "$run_tests" = 1 ]; then
  echo "== tier-1 tests =="
  PYTHONPATH=src python -m pytest -x -q || status=1
fi

if [ "$run_chaos" = 1 ]; then
  if PYTHONPATH=src python -c "import numpy" >/dev/null 2>&1; then
    echo "== chaos smoke (deterministic fault injection, SLO-judged) =="
    if command -v timeout >/dev/null 2>&1; then
      timeout 60 env PYTHONPATH=src python -m repro chaos --scenario smoke \
        --seed 0 --health default || status=1
    else
      PYTHONPATH=src python -m repro chaos --scenario smoke --seed 0 \
        --health default || status=1
    fi
  else
    echo "== numpy not installed; skipping chaos smoke =="
  fi
fi

if [ "$run_byzantine" = 1 ]; then
  if PYTHONPATH=src python -c "import numpy" >/dev/null 2>&1; then
    echo "== byzantine smoke (adversarial scenarios, hardening on, SLO-judged) =="
    for scenario in eclipse forged-obituary; do
      if command -v timeout >/dev/null 2>&1; then
        timeout 120 env PYTHONPATH=src python -m repro chaos \
          --byzantine "$scenario" --seed 0 --health default || status=1
      else
        PYTHONPATH=src python -m repro chaos --byzantine "$scenario" \
          --seed 0 --health default || status=1
      fi
    done
  else
    echo "== numpy not installed; skipping byzantine smoke =="
  fi
fi

if [ "$run_obs" = 1 ]; then
  if PYTHONPATH=src python -c "import numpy" >/dev/null 2>&1; then
    echo "== obs smoke (200-node instrumented run + span schema check) =="
    obs_dir="$(mktemp -d)"
    trap 'rm -rf "${analysis_dir:-}" "${obs_dir:-}" "${health_dir:-}"' EXIT
    if command -v timeout >/dev/null 2>&1; then
      timeout 120 env PYTHONPATH=src python -m repro obs run -n 200 --duration 120 \
        --spans "$obs_dir/spans.jsonl" || status=1
    else
      PYTHONPATH=src python -m repro obs run -n 200 --duration 120 \
        --spans "$obs_dir/spans.jsonl" || status=1
    fi
    PYTHONPATH=src python - "$obs_dir/spans.jsonl" <<'PY' || status=1
import sys
from repro.obs.export import validate_span_file
problems = validate_span_file(sys.argv[1])
for p in problems[:20]:
    print("span schema:", p)
print(f"span schema: {len(problems)} problem(s)")
sys.exit(1 if problems else 0)
PY
  else
    echo "== numpy not installed; skipping obs smoke =="
  fi
fi

if [ "$run_health" = 1 ]; then
  if PYTHONPATH=src python -c "import numpy" >/dev/null 2>&1; then
    echo "== health smoke (200-node run -> analytics -> SLO report) =="
    health_dir="$(mktemp -d)"
    trap 'rm -rf "${analysis_dir:-}" "${obs_dir:-}" "${health_dir:-}"' EXIT
    if command -v timeout >/dev/null 2>&1; then
      timeout 120 env PYTHONPATH=src python -m repro obs run -n 200 --duration 120 \
        --seed 1 --spans "$health_dir/spans.jsonl" \
        --metrics "$health_dir/metrics.json" || status=1
    else
      PYTHONPATH=src python -m repro obs run -n 200 --duration 120 \
        --seed 1 --spans "$health_dir/spans.jsonl" \
        --metrics "$health_dir/metrics.json" || status=1
    fi
    PYTHONPATH=src python -m repro obs analyze "$health_dir/spans.jsonl" \
      --metrics "$health_dir/metrics.json" || status=1
    PYTHONPATH=src python -m repro obs report "$health_dir/spans.jsonl" \
      --metrics "$health_dir/metrics.json" \
      --out "$health_dir/report.md" || status=1
    grep -q 'Status: HEALTHY' "$health_dir/report.md" || {
      echo "health smoke: report is not HEALTHY"; status=1; }
  else
    echo "== numpy not installed; skipping health smoke =="
  fi
fi

if [ "$run_live" = 1 ]; then
  if PYTHONPATH=src python -c "import numpy" >/dev/null 2>&1; then
    echo "== live smoke (localhost UDP swarm -> merged exports -> SLO judge) =="
    live_dir="$(mktemp -d)"
    trap 'rm -rf "${analysis_dir:-}" "${obs_dir:-}" "${health_dir:-}" "${live_dir:-}"' EXIT
    if command -v timeout >/dev/null 2>&1; then
      timeout 300 env PYTHONPATH=src python -m repro live swarm -n 6 \
        --duration 15 --out "$live_dir" || status=1
    else
      PYTHONPATH=src python -m repro live swarm -n 6 --duration 15 \
        --out "$live_dir" || status=1
    fi
    PYTHONPATH=src python -m repro obs health "$live_dir/spans.jsonl" \
      --metrics "$live_dir/metrics.json" || status=1
  else
    echo "== numpy not installed; skipping live smoke =="
  fi
fi

if [ "$run_watch" = 1 ]; then
  if PYTHONPATH=src python -c "import numpy" >/dev/null 2>&1; then
    echo "== watch smoke (200-node run -> telemetry frames -> verdict agreement) =="
    watch_dir="$(mktemp -d)"
    trap 'rm -rf "${analysis_dir:-}" "${obs_dir:-}" "${health_dir:-}" "${live_dir:-}" "${watch_dir:-}"' EXIT
    if command -v timeout >/dev/null 2>&1; then
      timeout 120 env PYTHONPATH=src python -m repro obs run -n 200 --duration 120 \
        --seed 1 --spans "$watch_dir/spans.jsonl" \
        --metrics "$watch_dir/metrics.json" \
        --snapshot-jsonl "$watch_dir/frames.jsonl" || status=1
    else
      PYTHONPATH=src python -m repro obs run -n 200 --duration 120 \
        --seed 1 --spans "$watch_dir/spans.jsonl" \
        --metrics "$watch_dir/metrics.json" \
        --snapshot-jsonl "$watch_dir/frames.jsonl" || status=1
    fi
    PYTHONPATH=src python -m repro obs health "$watch_dir/spans.jsonl" \
      --metrics "$watch_dir/metrics.json"
    health_status=$?
    PYTHONPATH=src python - "$watch_dir/frames.jsonl" "$health_status" <<'PY' || status=1
import sys
from repro.obs.stream import load_frames_file

frames, version, skipped = load_frames_file(sys.argv[1])
health_exit = int(sys.argv[2])
problems = []
if skipped:
    problems.append(f"{skipped} malformed frame line(s)")
if not frames:
    problems.append("no frames")
required = ("window", "t0", "t1", "final", "taps", "spans", "span_counts",
            "status_counts", "counters", "mcast", "join", "probe",
            "obituaries", "signals", "breaches", "verdicts", "healthy",
            "state")
for frame in frames:
    missing = [key for key in required if key not in frame]
    if missing:
        problems.append(f"frame {frame.get('window')}: missing {missing}")
finals = [frame for frame in frames if frame.get("final")]
if len(finals) != 1:
    problems.append(f"{len(finals)} final frames (want exactly 1)")
elif finals[0] is not frames[-1]:
    problems.append("final frame is not the last frame")
elif not finals[0]["verdicts"]:
    problems.append("final frame has no verdicts")
elif bool(finals[0]["healthy"]) != (health_exit == 0):
    problems.append(
        f"final frame healthy={finals[0]['healthy']} but "
        f"`repro obs health` exited {health_exit}"
    )
for p in problems[:20]:
    print("watch smoke:", p)
print(f"watch smoke: {len(frames)} frame(s), {len(problems)} problem(s)")
sys.exit(1 if problems else 0)
PY
  else
    echo "== numpy not installed; skipping watch smoke =="
  fi
fi

if [ "$run_compare" = 1 ]; then
  if PYTHONPATH=src python -c "import numpy" >/dev/null 2>&1; then
    echo "== compare smoke (2-protocol seeded tournament -> scorecard) =="
    compare_dir="$(mktemp -d)"
    trap 'rm -rf "${analysis_dir:-}" "${obs_dir:-}" "${health_dir:-}" "${live_dir:-}" "${watch_dir:-}" "${compare_dir:-}"' EXIT
    if command -v timeout >/dev/null 2>&1; then
      timeout 300 env PYTHONPATH=src python -m repro compare \
        --contestants peerwindow gossip -n 40 --duration 120 \
        --window 30 --seed 0 --json "$compare_dir/scorecard.json" \
        >/dev/null || status=1
    else
      PYTHONPATH=src python -m repro compare \
        --contestants peerwindow gossip -n 40 --duration 120 \
        --window 30 --seed 0 --json "$compare_dir/scorecard.json" \
        >/dev/null || status=1
    fi
    PYTHONPATH=src python - "$compare_dir/scorecard.json" <<'PY' || status=1
import json, sys

doc = json.load(open(sys.argv[1]))
problems = []
if doc.get("schema") != "repro.compare":
    problems.append(f"schema={doc.get('schema')!r} (want 'repro.compare')")
if doc.get("schema_version") != 1:
    problems.append(f"schema_version={doc.get('schema_version')!r} (want 1)")
rows = doc.get("rows", [])
if not rows:
    problems.append("no rows")
required = ("contestant", "seed", "live_final", "bits_total",
            "bandwidth_bps_per_node", "error_rate", "completeness",
            "windows", "window_breaches", "final_breaches", "healthy")
for row in rows:
    missing = [key for key in required if key not in row]
    if missing:
        problems.append(f"row {row.get('contestant')}: missing {missing}")
names = sorted({row.get("contestant") for row in rows})
if names != ["gossip", "peerwindow"]:
    problems.append(f"contestants {names} (want gossip+peerwindow)")
if not isinstance(doc.get("champion_healthy"), bool):
    problems.append("champion_healthy is not a bool")
if not doc.get("aggregates"):
    problems.append("no aggregates")
for p in problems[:20]:
    print("compare smoke:", p)
print(f"compare smoke: {len(rows)} row(s), {len(problems)} problem(s)")
sys.exit(1 if problems else 0)
PY
  else
    echo "== numpy not installed; skipping compare smoke =="
  fi
fi

exit $status
