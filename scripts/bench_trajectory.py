#!/usr/bin/env python3
"""Regenerate BENCH_health.json, the committed health-trajectory point.

Replays the fixed seed matrix from ``benchmarks.bench_health`` (chaos
run -> span analytics -> SLO verdicts per cell) and writes the result
as sorted, indented JSON.  Every cell is a pure function of
``(scenario, n_nodes, seed)``, so rerunning on the same tree is
byte-identical: a diff in the committed file means protocol behaviour
moved, and review sees exactly which signal moved where.

Usage (from the repo root)::

    python scripts/bench_trajectory.py            # rewrite BENCH_health.json
    python scripts/bench_trajectory.py --check    # compare, don't write
    python scripts/bench_trajectory.py --quick    # smoke cells only
    python scripts/bench_trajectory.py --perf     # also print perf rows

``--perf`` appends machine-dependent engine-cost rows (wall-clock ns per
simulator event and the process's peak RSS) for a fixed reference
workload.  Those numbers never go into BENCH_health.json — the committed
trajectory stays a pure byte-identical function of the seed matrix —
but printing them next to the health cells gives each trajectory point
an engine-cost coordinate on the machine that produced it.

Exit status: 0 when every cell is healthy (and, under ``--check``, the
file matches); 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, ROOT)

from benchmarks.bench_health import (  # noqa: E402
    MATRIX,
    TRAJECTORY_PATH,
    build_trajectory,
)


def render(doc) -> str:
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


#: (n_nodes, sim duration) of the ``--perf`` reference workloads: a
#: staggered-join network under the paper-scale default config.
PERF_MATRIX = ((40, 120.0), (100, 120.0))


def run_perf_cell(n_nodes: int, duration: float, seed: int = 0) -> dict:
    """One engine-cost row: wall ns/event and peak RSS for a sequential
    run of ``n_nodes`` over ``duration`` simulated seconds.

    Peak RSS is process-wide and monotone (``ru_maxrss``), so later rows
    inherit earlier rows' high-water mark; the first row is the cleanest
    memory reading.
    """
    from repro.core.config import ProtocolConfig
    from repro.core.protocol import PeerWindowNetwork
    from repro.net.latency import PairwiseLatencyModel

    t0 = time.perf_counter()
    net = PeerWindowNetwork(
        config=ProtocolConfig(),
        topology=PairwiseLatencyModel(),
        master_seed=seed,
    )
    bootstrap = net.add_first_node(4000.0)
    for i in range(1, n_nodes):
        net.sim.schedule(1.0 * i, net.add_node, 4000.0, bootstrap)
    net.run(until=duration)
    wall = time.perf_counter() - t0
    events = net.sim._events_executed
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "n_nodes": n_nodes,
        "duration": duration,
        "events": events,
        "wall_s": wall,
        "ns_per_event": 1e9 * wall / max(1, events),
        "peak_rss_mb": peak_kb / 1024.0,
    }


def print_perf_rows() -> None:
    print("\nengine cost (machine-dependent; not part of BENCH_health.json):")
    print(f"  {'n':>4} {'sim-dur':>8} {'events':>9} {'wall':>8} "
          f"{'ns/event':>9} {'peak-RSS':>9}")
    for n_nodes, duration in PERF_MATRIX:
        row = run_perf_cell(n_nodes, duration)
        print(f"  {row['n_nodes']:>4} {row['duration']:>7.0f}s "
              f"{row['events']:>9} {row['wall_s']:>7.2f}s "
              f"{row['ns_per_event']:>9.0f} {row['peak_rss_mb']:>7.1f}MB")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=TRAJECTORY_PATH,
                        help="output path (default: repo-root BENCH_health.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the existing file instead of writing")
    parser.add_argument("--quick", action="store_true",
                        help="run only the smoke cells (fast sanity pass)")
    parser.add_argument("--perf", action="store_true",
                        help="also print ns/event + peak-RSS rows for the "
                             "fixed reference workloads (stdout only)")
    args = parser.parse_args(argv)

    matrix = tuple(c for c in MATRIX if c[0] == "smoke") if args.quick else MATRIX
    for scenario, n, seed in matrix:
        print(f"cell {scenario} n={n} seed={seed} ...", flush=True)
    doc = build_trajectory(matrix)
    for cell in doc["matrix"]:
        state = "healthy" if cell["healthy"] else (
            "UNHEALTHY: " + ", ".join(cell["breaches"]))
        print(f"  {cell['scenario']} n={cell['n_nodes']} "
              f"seed={cell['seed']}: {state} "
              f"(completeness "
              f"{cell['signals']['mcast.tree_completeness']:.4f})")

    text = render(doc)
    if args.check:
        try:
            with open(args.out, "r", encoding="utf-8") as fh:
                current = fh.read()
        except OSError:
            print(f"missing {args.out}; run without --check to create it")
            return 1
        if current != text:
            print(f"{args.out} is stale; regenerate with "
                  f"python scripts/bench_trajectory.py")
            return 1
        print(f"{args.out} is current")
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({doc['summary']['cells']} cells)")
    if args.perf:
        print_perf_rows()
    return 0 if doc["summary"]["healthy"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
