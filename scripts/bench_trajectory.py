#!/usr/bin/env python3
"""Regenerate BENCH_health.json, the committed health-trajectory point.

Replays the fixed seed matrix from ``benchmarks.bench_health`` (chaos
run -> span analytics -> SLO verdicts per cell) and writes the result
as sorted, indented JSON.  Every cell is a pure function of
``(scenario, n_nodes, seed)``, so rerunning on the same tree is
byte-identical: a diff in the committed file means protocol behaviour
moved, and review sees exactly which signal moved where.

Usage (from the repo root)::

    python scripts/bench_trajectory.py            # rewrite BENCH_health.json
    python scripts/bench_trajectory.py --check    # compare, don't write
    python scripts/bench_trajectory.py --quick    # smoke cells only
    python scripts/bench_trajectory.py --perf     # also print perf rows
    python scripts/bench_trajectory.py --baselines  # also BENCH_baselines.json

``--baselines`` regenerates (or, with ``--check``, byte-compares)
``BENCH_baselines.json``: the seeded protocol-tournament scorecard from
``benchmarks.bench_baseline_comparison`` — every executable contestant
over one identical churn workload.  Like the health trajectory it is a
pure function of its seed matrix, so the committed file is
byte-identical across reruns and engines.

``--perf`` measures machine-dependent engine-cost rows (wall-clock ns
per simulator event and the process's peak RSS) for fixed reference
workloads and writes them to ``BENCH_perf.json``.  Those numbers never
go into BENCH_health.json — the committed trajectory stays a pure
byte-identical function of the seed matrix — they live in their own
document with an explicit comparison tolerance, because wall-clock cost
is reproducible only *approximately* on the machine that produced it.

``--perf --check`` compares a fresh measurement against the committed
``BENCH_perf.json``: event counts must match exactly (they are
deterministic), while ``ns_per_event`` and ``peak_rss_mb`` may regress
by at most the file's own ``tolerance`` fractions (default 0.50 — CI
machines are noisy; the point is to flag order-of-magnitude cost
regressions, not jitter).  Improvements never fail the check.

Exit status: 0 when every cell is healthy (and, under ``--check``, the
file matches / perf is within tolerance); 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, ROOT)

from benchmarks.bench_health import (  # noqa: E402
    MATRIX,
    TRAJECTORY_PATH,
    build_trajectory,
)


def render(doc) -> str:
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


#: (n_nodes, sim duration) of the ``--perf`` reference workloads: a
#: staggered-join network under the paper-scale default config.
PERF_MATRIX = ((40, 120.0), (100, 120.0))

#: Where the engine-cost point lives (repo root, next to BENCH_health).
PERF_PATH = os.path.join(ROOT, "BENCH_perf.json")

#: Allowed *regression* fractions for ``--perf --check``: a fresh
#: measurement may be up to ``(1 + tolerance)`` times the committed
#: value before the check fails.  Wall clock and RSS wobble with CPU
#: contention and allocator state, but repeated same-machine runs stay
#: well inside these bands; the gate exists to catch real engine-cost
#: regressions (a hot-path slip, a leak that grows peak memory), not
#: scheduler noise.  The check takes the *tighter* of this constant and
#: the committed file's own ``tolerance``, so a stale committed file can
#: never loosen the gate below what the current tree demands.
PERF_TOLERANCE = {"ns_per_event": 0.35, "peak_rss_mb": 0.30}


def run_perf_cell(n_nodes: int, duration: float, seed: int = 0) -> dict:
    """One engine-cost row: wall ns/event and peak RSS for a sequential
    run of ``n_nodes`` over ``duration`` simulated seconds.

    Peak RSS is process-wide and monotone (``ru_maxrss``), so later rows
    inherit earlier rows' high-water mark; the first row is the cleanest
    memory reading.
    """
    from repro.core.config import ProtocolConfig
    from repro.core.protocol import PeerWindowNetwork
    from repro.net.latency import PairwiseLatencyModel

    t0 = time.perf_counter()
    net = PeerWindowNetwork(
        config=ProtocolConfig(),
        topology=PairwiseLatencyModel(),
        master_seed=seed,
    )
    bootstrap = net.add_first_node(4000.0)
    for i in range(1, n_nodes):
        net.sim.schedule(1.0 * i, net.add_node, 4000.0, bootstrap)
    net.run(until=duration)
    wall = time.perf_counter() - t0
    events = net.sim._events_executed
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "n_nodes": n_nodes,
        "duration": duration,
        "events": events,
        "wall_s": wall,
        "ns_per_event": 1e9 * wall / max(1, events),
        "peak_rss_mb": peak_kb / 1024.0,
    }


def build_perf_doc() -> dict:
    """Measure every reference workload and wrap the rows in the
    BENCH_perf.json document (schema + the comparison tolerance that
    future checks of this file must honour)."""
    return {
        "schema": "repro.bench.perf",
        "schema_version": 1,
        "tolerance": dict(PERF_TOLERANCE),
        "cells": [run_perf_cell(n, duration) for n, duration in PERF_MATRIX],
    }


def print_perf_rows(doc: dict) -> None:
    print("\nengine cost (machine-dependent; see BENCH_perf.json):")
    print(f"  {'n':>4} {'sim-dur':>8} {'events':>9} {'wall':>8} "
          f"{'ns/event':>9} {'peak-RSS':>9}")
    for row in doc["cells"]:
        print(f"  {row['n_nodes']:>4} {row['duration']:>7.0f}s "
              f"{row['events']:>9} {row['wall_s']:>7.2f}s "
              f"{row['ns_per_event']:>9.0f} {row['peak_rss_mb']:>7.1f}MB")


def check_perf(fresh: dict, path: str) -> list:
    """Compare a fresh measurement against the committed perf point.

    Returns a list of problem strings (empty when the check passes).
    Event counts are deterministic and must match exactly; the cost
    axes may exceed the committed value by at most the committed file's
    own ``tolerance`` fraction.  Getting *faster* never fails.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            committed = json.load(fh)
    except OSError:
        return [f"missing {path}; run --perf without --check to create it"]
    problems = []
    committed_tol = committed.get("tolerance", {})
    old_cells = {(c["n_nodes"], c["duration"]): c
                 for c in committed.get("cells", [])}
    for cell in fresh["cells"]:
        key = (cell["n_nodes"], cell["duration"])
        old = old_cells.get(key)
        label = f"n={cell['n_nodes']} dur={cell['duration']:.0f}"
        if old is None:
            problems.append(f"{label}: no committed cell (file is stale)")
            continue
        if cell["events"] != old["events"]:
            problems.append(
                f"{label}: events {cell['events']} != committed "
                f"{old['events']} (engine behaviour changed; regenerate)"
            )
        for axis in ("ns_per_event", "peak_rss_mb"):
            # Tighter of the current constant and the committed file's
            # own band: regenerating with an old script can't widen it.
            tol = min(
                PERF_TOLERANCE[axis],
                float(committed_tol.get(axis, PERF_TOLERANCE[axis])),
            )
            limit = old[axis] * (1.0 + tol)
            if cell[axis] > limit:
                problems.append(
                    f"{label}: {axis} regressed — measured {cell[axis]:.1f}"
                    f" > limit {limit:.1f} (committed {old[axis]:.1f}"
                    f" + {100 * tol:.0f}% tolerance).  If this tree is"
                    f" intentionally more expensive (new instrumentation,"
                    f" bigger state), re-baseline on a quiet machine with"
                    f" `python scripts/bench_trajectory.py --perf`;"
                    f" otherwise profile the regression before merging."
                )
    return problems


def run_baselines(check: bool, out: str) -> int:
    """Regenerate or byte-compare the tournament scorecard point."""
    from benchmarks.bench_baseline_comparison import build_baselines_doc

    doc = build_baselines_doc()
    for row in doc["rows"]:
        state = "healthy" if row["healthy"] else (
            "UNHEALTHY: " + ", ".join(row["final_breaches"]))
        print(f"  {row['contestant']} seed={row['seed']}: {state} "
              f"(bw {row['bandwidth_bps_per_node']:.1f} bps/node, "
              f"error {row['error_rate']:.4f})")
    text = render(doc)
    if check:
        try:
            with open(out, "r", encoding="utf-8") as fh:
                current = fh.read()
        except OSError:
            print(f"missing {out}; run --baselines without --check to create it")
            return 1
        if current != text:
            print(f"{out} is stale; regenerate with "
                  f"python scripts/bench_trajectory.py --baselines")
            return 1
        print(f"{out} is current")
    else:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {out} ({len(doc['rows'])} rows)")
    return 0 if doc["champion_healthy"] else 1


def main(argv=None) -> int:
    from benchmarks.bench_baseline_comparison import BASELINES_PATH

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=TRAJECTORY_PATH,
                        help="output path (default: repo-root BENCH_health.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the existing file instead of writing")
    parser.add_argument("--quick", action="store_true",
                        help="run only the smoke cells (fast sanity pass)")
    parser.add_argument("--perf", action="store_true",
                        help="also measure ns/event + peak-RSS for the fixed "
                             "reference workloads and write (or, with "
                             "--check, compare within tolerance) "
                             "BENCH_perf.json")
    parser.add_argument("--perf-out", default=PERF_PATH,
                        help="perf output path (default: repo-root "
                             "BENCH_perf.json)")
    parser.add_argument("--baselines", action="store_true",
                        help="also regenerate (or --check) the committed "
                             "protocol-tournament scorecard "
                             "BENCH_baselines.json")
    parser.add_argument("--baselines-out", default=BASELINES_PATH,
                        help="tournament scorecard output path (default: "
                             "repo-root BENCH_baselines.json)")
    args = parser.parse_args(argv)

    matrix = tuple(c for c in MATRIX if c[0] == "smoke") if args.quick else MATRIX
    for scenario, n, seed in matrix:
        print(f"cell {scenario} n={n} seed={seed} ...", flush=True)
    doc = build_trajectory(matrix)
    for cell in doc["matrix"]:
        state = "healthy" if cell["healthy"] else (
            "UNHEALTHY: " + ", ".join(cell["breaches"]))
        print(f"  {cell['scenario']} n={cell['n_nodes']} "
              f"seed={cell['seed']}: {state} "
              f"(completeness "
              f"{cell['signals']['mcast.tree_completeness']:.4f})")

    text = render(doc)
    if args.check:
        try:
            with open(args.out, "r", encoding="utf-8") as fh:
                current = fh.read()
        except OSError:
            print(f"missing {args.out}; run without --check to create it")
            return 1
        if current != text:
            print(f"{args.out} is stale; regenerate with "
                  f"python scripts/bench_trajectory.py")
            return 1
        print(f"{args.out} is current")
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({doc['summary']['cells']} cells)")
    status = 0 if doc["summary"]["healthy"] else 1
    if args.perf:
        perf_doc = build_perf_doc()
        print_perf_rows(perf_doc)
        if args.check:
            problems = check_perf(perf_doc, args.perf_out)
            for problem in problems:
                print(f"perf: {problem}")
            if problems:
                status = 1
            else:
                print(f"{args.perf_out} is within tolerance")
        else:
            with open(args.perf_out, "w", encoding="utf-8") as fh:
                fh.write(render(perf_doc))
            print(f"wrote {args.perf_out} ({len(perf_doc['cells'])} cells)")
    if args.baselines:
        print("tournament scorecard:")
        rc = run_baselines(args.check, args.baselines_out)
        if rc:
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
