#!/usr/bin/env python3
"""Regenerate BENCH_health.json, the committed health-trajectory point.

Replays the fixed seed matrix from ``benchmarks.bench_health`` (chaos
run -> span analytics -> SLO verdicts per cell) and writes the result
as sorted, indented JSON.  Every cell is a pure function of
``(scenario, n_nodes, seed)``, so rerunning on the same tree is
byte-identical: a diff in the committed file means protocol behaviour
moved, and review sees exactly which signal moved where.

Usage (from the repo root)::

    python scripts/bench_trajectory.py            # rewrite BENCH_health.json
    python scripts/bench_trajectory.py --check    # compare, don't write
    python scripts/bench_trajectory.py --quick    # smoke cells only

Exit status: 0 when every cell is healthy (and, under ``--check``, the
file matches); 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, ROOT)

from benchmarks.bench_health import (  # noqa: E402
    MATRIX,
    TRAJECTORY_PATH,
    build_trajectory,
)


def render(doc) -> str:
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=TRAJECTORY_PATH,
                        help="output path (default: repo-root BENCH_health.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the existing file instead of writing")
    parser.add_argument("--quick", action="store_true",
                        help="run only the smoke cells (fast sanity pass)")
    args = parser.parse_args(argv)

    matrix = tuple(c for c in MATRIX if c[0] == "smoke") if args.quick else MATRIX
    for scenario, n, seed in matrix:
        print(f"cell {scenario} n={n} seed={seed} ...", flush=True)
    doc = build_trajectory(matrix)
    for cell in doc["matrix"]:
        state = "healthy" if cell["healthy"] else (
            "UNHEALTHY: " + ", ".join(cell["breaches"]))
        print(f"  {cell['scenario']} n={cell['n_nodes']} "
              f"seed={cell['seed']}: {state} "
              f"(completeness "
              f"{cell['signals']['mcast.tree_completeness']:.4f})")

    text = render(doc)
    if args.check:
        try:
            with open(args.out, "r", encoding="utf-8") as fh:
                current = fh.read()
        except OSError:
            print(f"missing {args.out}; run without --check to create it")
            return 1
        if current != text:
            print(f"{args.out} is stale; regenerate with "
                  f"python scripts/bench_trajectory.py")
            return 1
        print(f"{args.out} is current")
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({doc['summary']['cells']} cells)")
    return 0 if doc["summary"]["healthy"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
