"""Observability overhead: the no-op-by-default contract, measured.

Three layers of evidence that instrumentation is free until someone
actually consumes it:

* a guard micro-bench — the cost of a disabled ``MetricsRegistry`` call
  and a disabled-``NodeObs`` span attempt, per call.  The telemetry-bus
  hooks (``sink`` checks) sit *behind* the ``enabled`` guard, so this
  same number is the disabled cost with or without the stream module
  loaded;
* an enabled-no-subscriber micro-bench — the cost of an enabled
  counter/span pair when no :class:`~repro.obs.stream.NodeTap` is
  attached: the sink hook must cost one ``is None`` check, nothing
  more;
* identical end-to-end churn runs — observability off vs on vs on with
  a :class:`~repro.obs.stream.TelemetryBus` attached — printing the
  overheads (the *off* configuration IS the default every other bench
  and test runs under, so its time is the baseline).

The off-path cost per protocol operation is a handful of attribute
loads and an early return — the micro-bench shows tens of nanoseconds
per call, i.e. well under 5% of even the cheapest simulated event
(an event dispatch is ~10 µs, see bench_engine_micro).  Wall-clock
ratios are printed, not asserted: CI timing jitter would make a hard
percentage assertion flaky.
"""

import time

from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from repro.net.latency import PairwiseLatencyModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import TelemetryBus
from repro.obs.trace import NodeObs

from .conftest import run_once

NODES = 60
DURATION = 120.0


def churn_run(observability: bool, bus: bool = False) -> dict:
    config = ProtocolConfig(id_bits=16)
    net = PeerWindowNetwork(
        config=config,
        topology=PairwiseLatencyModel(),
        master_seed=7,
        observability=observability,
    )
    if bus:
        net.obs.attach_bus(TelemetryBus())
    net.seed_nodes([4000.0] * NODES)
    keys = list(net.nodes)
    for key in keys[1:4]:
        net.leave(int(key))
    net.run(until=DURATION / 2)
    for _ in range(3):
        net.add_node(4000.0, keys[0])
    net.run(until=DURATION)
    return net.stats_summary()


def test_bench_disabled_guard_micro(benchmark):
    """Per-call cost of metrics/span calls when observability is off."""
    reg = MetricsRegistry(enabled=False)
    obs = NodeObs("n0", enabled=False)
    calls = 10_000

    def run():
        for _ in range(calls):
            reg.inc("mcast.received")
            reg.observe("probe.rtt", 0.1)
            if obs.enabled:  # the span-site idiom: guard, never start
                obs.start("probe", 0.0)
        return calls

    assert benchmark(run) == calls
    per_call = benchmark.stats.stats.min / (calls * 3)
    print(f"\ndisabled-guard cost: {per_call * 1e9:.0f} ns/call")


def test_bench_enabled_no_subscriber_micro(benchmark):
    """Per-call cost of an *enabled* counter + instant span when no
    telemetry sink is attached: the stream hook must reduce to one
    ``sink is None`` check on each emit path."""
    reg = MetricsRegistry(enabled=True)
    obs = NodeObs("n0", enabled=True)
    calls = 10_000

    def run():
        for _ in range(calls):
            reg.inc("mcast.received")
            obs.instant("probe", 0.0)
        obs.spans.clear()
        return calls

    assert benchmark(run) == calls
    per_call = benchmark.stats.stats.min / (calls * 2)
    print(f"\nenabled, no subscriber: {per_call * 1e9:.0f} ns/call")


def test_bench_obs_disabled_run(benchmark):
    """The default configuration: every guard present, nothing recorded."""
    stats = run_once(benchmark, churn_run, False)
    assert stats["transport_delivered"] > 0


def test_bench_obs_enabled_run(benchmark):
    """Same scenario fully instrumented (spans + metrics)."""
    stats = run_once(benchmark, churn_run, True)
    assert stats["transport_delivered"] > 0


def test_bench_obs_bus_run(benchmark):
    """Same scenario instrumented with a telemetry bus tapped in (every
    span end and counter increment also lands in a NodeTap)."""
    stats = run_once(benchmark, churn_run, True, True)
    assert stats["transport_delivered"] > 0


def test_obs_overhead_report():
    """Print off/on/bus wall times and check behaviour is unperturbed."""
    t0 = time.perf_counter()
    off = churn_run(False)
    t_off = time.perf_counter() - t0
    t0 = time.perf_counter()
    on = churn_run(True)
    t_on = time.perf_counter() - t0
    t0 = time.perf_counter()
    bus = churn_run(True, bus=True)
    t_bus = time.perf_counter() - t0
    assert off == on  # observability must not perturb the protocol
    assert on == bus  # ...and neither must a subscribed telemetry bus
    pct_on = (t_on - t_off) / t_off * 100.0
    pct_bus = (t_bus - t_off) / t_off * 100.0
    print(
        f"\nobs off: {t_off:.3f}s  obs on: {t_on:.3f}s ({pct_on:+.1f}%)  "
        f"obs on + bus: {t_bus:.3f}s ({pct_bus:+.1f}%)"
    )
