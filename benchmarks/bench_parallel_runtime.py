"""Sequential vs. partitioned runtime at population scale.

Not a paper figure — the performance gate for the ONSP-style
:class:`~repro.core.runtime.PartitionedRuntime`: the same seeded
deployment is driven on the sequential engine and partitioned across 4
logical processes (threads off and on), wall-clock times are compared,
and the summaries are asserted bit-for-bit identical (the equivalence
contract, at benchmark scale).

Default scale is 5,000 nodes; ``REPRO_FULL=1`` raises it to 20,000.
CPython's GIL caps the threaded speedup, so the number to watch is the
epoch-barrier *overhead* of ``parallel=`` vs. sequential — the model cost
of moving to the partitioned engine, which real multi-core backends would
then amortize.
"""

import os
import time

from benchmarks.conftest import run_once
from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from repro.experiments.report import print_table
from repro.net.latency import PairwiseLatencyModel

N_NODES = 20_000 if os.environ.get("REPRO_FULL") else 5_000
FORCED_LEVEL = 8 if os.environ.get("REPRO_FULL") else 6
SIM_SECONDS = 120.0

CONFIG = ProtocolConfig(
    id_bits=16,
    probe_interval=30.0,
    probe_timeout=5.0,
    # Levels are pinned by the seeding; a live controller would have every
    # node raise at the first tick (uniform huge thresholds) and the bench
    # would measure a 5,000-way multicast storm instead of steady state.
    level_check_interval=1e6,
    multicast_processing_delay=1.0,
)
N_CRASHES = 10


def drive(parallel=None, threads=False):
    net = PeerWindowNetwork(
        config=CONFIG,
        master_seed=5,
        topology=PairwiseLatencyModel(),
        parallel=parallel,
        threads=threads,
    )
    keys = net.seed_nodes([1e9] * N_NODES, forced_level=FORCED_LEVEL)
    net.run(until=40.0)
    # A bounded churn burst: failure detection + obituary multicasts.
    for key in keys[:N_CRASHES]:
        net.crash(key)
    net.run(until=SIM_SECONDS)
    return net


def test_bench_partitioned_vs_sequential(benchmark):
    t0 = time.perf_counter()
    seq = drive()
    t_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = drive(parallel=4)
    t_par = time.perf_counter() - t0

    t0 = time.perf_counter()
    thr = run_once(benchmark, drive, parallel=4, threads=True)
    t_thr = time.perf_counter() - t0

    s = seq.stats_summary()
    assert par.stats_summary() == s
    assert thr.stats_summary() == s

    print_table(
        f"{N_NODES} nodes, {SIM_SECONDS:.0f} sim-seconds, level {FORCED_LEVEL}",
        ["mode", "wall s", "vs sequential"],
        [
            ["sequential", round(t_seq, 2), "1.00x"],
            ["parallel=4", round(t_par, 2), f"{t_par / t_seq:.2f}x"],
            ["parallel=4 threads", round(t_thr, 2), f"{t_thr / t_seq:.2f}x"],
        ],
    )
    print_table(
        "partitioned execution profile",
        ["metric", "value"],
        [
            ["epochs run", par.runtime.psim.epochs_run],
            ["cross-LP messages", par.runtime.psim.total_messages()["sent"]],
            ["messages sent", int(s["transport_sent"])],
            ["probes sent", int(s["probes_sent"])],
            ["live nodes", int(s["live_nodes"])],
        ],
    )
