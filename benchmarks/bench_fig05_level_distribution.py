"""Figure 5: node distribution across levels in the common PeerWindow.

Paper claim: *"somewhat surprisingly, there are more than half of the
nodes running at level 0"* — consistent with the Gnutella bandwidth
measurement where only 20% of nodes are below 1 Mbps.

Run with ``REPRO_FULL=1`` for the 100,000-node original; the default is a
CI-scale run with the same workload shape.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig5_node_distribution
from repro.experiments.report import print_table
from repro.experiments.scenario import common_params


def test_bench_fig05(benchmark):
    rows = run_once(benchmark, fig5_node_distribution, common_params())
    print_table(
        "Figure 5 — node distribution by level (common PeerWindow)",
        ["level", "nodes", "fraction"],
        rows,
    )
    frac0 = next(f for lvl, _, f in rows if lvl == 0)
    assert frac0 > 0.5, "paper: more than half of the nodes at level 0"
