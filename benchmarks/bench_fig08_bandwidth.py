"""Figure 8: input/output bandwidth for peer-list maintenance, by level.

Paper claims: input bandwidth is proportional to peer-list size (about
500 bps per 1000 pointers); output bandwidth is concentrated at levels
0-1 (strong nodes do nearly all the multicast forwarding) but stays light.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig6_peer_list_sizes, fig8_bandwidth
from repro.experiments.report import print_table
from repro.experiments.scenario import common_params


def test_bench_fig08(benchmark):
    params = common_params()
    rows = run_once(benchmark, fig8_bandwidth, params)
    sizes = {lvl: mean for lvl, mean, _, _ in fig6_peer_list_sizes(params)}
    table = [
        [lvl, inb, outb, inb / max(sizes.get(lvl, 1), 1) * 1000.0]
        for lvl, inb, outb in rows
    ]
    print_table(
        "Figure 8 — maintenance bandwidth by level",
        ["level", "in bps", "out bps", "in bps per 1000 ptrs"],
        table,
    )
    out_by_level = {lvl: o for lvl, _, o in rows}
    assert out_by_level[min(out_by_level)] == max(out_by_level.values()), (
        "output bandwidth must be concentrated at the strongest level"
    )
    lvl0_per_1000 = table[0][3]
    assert 150.0 < lvl0_per_1000 < 1200.0, "paper band: ~500 bps per 1000 pointers"
