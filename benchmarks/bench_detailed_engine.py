"""Detailed-engine throughput and underlay profile benches.

Not a paper figure — the performance gates a maintainer watches:

* how many wire-protocol events per wall-second the detailed engine
  sustains on a churny deployment (regressions here make every test and
  example slower);
* the transit-stub latency profile (its mean feeds the §5 delay model
  and the closed-form predictor, which assumes ≈0.78 s — asserted here).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from repro.experiments.report import print_table
from repro.net.transit_stub import TransitStubParams, TransitStubTopology


def churny_run():
    config = ProtocolConfig(
        id_bits=16,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=20.0,
        multicast_processing_delay=0.1,
    )
    net = PeerWindowNetwork(config=config, master_seed=1)
    keys = net.seed_nodes([1e9] * 100)
    net.run(until=30.0)
    rng = net.streams.get("bench-churn")
    for i in range(20):
        live = [k for k in net.nodes if net.nodes[k].alive]
        net.crash(live[int(rng.integers(0, len(live)))])
        net.add_node(1e9, bootstrap=live[0])
        net.run(until=net.sim.now + 10.0)
    net.run(until=net.sim.now + 30.0)  # settle in-flight joins/detections
    return net


def test_bench_detailed_engine_throughput(benchmark):
    net = run_once(benchmark, churny_run)
    stats = net.stats_summary()
    print_table(
        "detailed engine: 100 nodes, 20 crash+join cycles, 230 sim-seconds",
        ["metric", "value"],
        [
            ["sim events executed", net.sim.events_executed],
            ["messages sent", stats["transport_sent"]],
            ["failures detected", stats["failures_detected"]],
            ["live nodes at end", stats["live_nodes"]],
            ["mean error rate", round(stats["mean_error_rate"], 5)],
        ],
    )
    # A join whose bootstrap crashed in the same cycle may have failed;
    # population must stay within one of the target.
    assert 99 <= stats["live_nodes"] <= 101
    assert stats["mean_error_rate"] < 0.02


def test_bench_underlay_latency_profile(benchmark):
    topo = TransitStubTopology(TransitStubParams(), seed=0)
    lats = run_once(benchmark, topo.latency_sample, 100_000)
    print_table(
        "GT-ITM transit-stub pairwise latency profile (100k pairs)",
        ["stat", "seconds"],
        [
            ["mean", float(np.mean(lats))],
            ["p10", float(np.percentile(lats, 10))],
            ["p50", float(np.percentile(lats, 50))],
            ["p90", float(np.percentile(lats, 90))],
            ["max", float(np.max(lats))],
        ],
    )
    # The predictor assumes the mean sits near 0.78 s for the paper's
    # parameters; keep it pinned.
    assert 0.5 < float(np.mean(lats)) < 1.1
