"""Figure 12: average peer-list error rate vs Lifetime_Rate (§5.3).

Paper claims (log-scale y): ``error_rate ≈ multicast_delay / lifetime``,
so error is roughly inversely proportional to the lifetime rate — about
10x higher at rate 0.1 than in the common case.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig12_adaptivity_error
from repro.experiments.report import print_table
from repro.experiments.scenario import common_params, lifetime_rates


def test_bench_fig12(benchmark):
    rows = run_once(
        benchmark, fig12_adaptivity_error, lifetime_rates(), common_params()
    )
    print_table(
        "Figure 12 — mean error rate vs Lifetime_Rate (inverse law)",
        ["rate", "mean error rate", "rate x error (≈const)"],
        [[r, e, r * e] for r, e in rows],
    )
    by_rate = dict(rows)
    if 0.1 in by_rate and 1.0 in by_rate:
        ratio = by_rate[0.1] / by_rate[1.0]
        assert 3.0 < ratio < 30.0, "paper: ~10x error at rate 0.1"
