"""Baseline comparison: pointers maintainable per bandwidth budget.

Regenerates the introduction's positioning:

* explicit probing wastes 99.58% of its messages and maintains only 600
  pointers at 10 kbps;
* gossip multicast pays redundancy r;
* the one-hop DHT is all-or-nothing and prices weak nodes out at scale;
* random-walk collection cannot amortize maintenance.

PeerWindow's tree multicast dominates at every budget.
"""

from benchmarks.conftest import run_once
from repro.baselines.explicit_probe import ExplicitProbeScheme
from repro.baselines.gossip import GossipMulticastScheme
from repro.baselines.onehop import OneHopDHTScheme
from repro.baselines.random_walk import RandomWalkScheme
from repro.core.analytic import CostModel
from repro.experiments.report import print_table

LIFETIME = 3600.0
N = 100_000


def compute():
    peer_window = CostModel(mean_lifetime_s=LIFETIME)
    schemes = [
        ExplicitProbeScheme(probe_period_s=30.0, mean_lifetime_s=LIFETIME),
        GossipMulticastScheme(redundancy=4.0, mean_lifetime_s=LIFETIME),
        OneHopDHTScheme(n_nodes=N, mean_lifetime_s=LIFETIME),
        RandomWalkScheme(mean_lifetime_s=LIFETIME),
    ]
    budgets = [500.0, 5_000.0, 50_000.0, 500_000.0]
    rows = []
    for w in budgets:
        row = [f"{w:,.0f}", peer_window.pointers_for_bandwidth(w)]
        row += [s.pointers_for_bandwidth(w) for s in schemes]
        rows.append(row)
    headers = ["budget bps", "PeerWindow"] + [s.name for s in schemes]
    reports = [s.report(10_000.0).as_dict() for s in schemes]
    return headers, rows, reports


def test_bench_baseline_comparison(benchmark):
    headers, rows, reports = run_once(benchmark, compute)
    print_table("pointers maintainable per budget (N=100k, L=1h)", headers, rows)
    print_table(
        "scheme properties at 10 kbps",
        ["scheme", "pointers", "useful msg fraction", "heterogeneous", "autonomic"],
        [
            [r["scheme"], r["pointers"], r["useful_fraction"], r["heterogeneous"], r["autonomic"]]
            for r in reports
        ],
    )
    # PeerWindow wins at every budget.
    for row in rows:
        pw = row[1]
        assert all(pw >= other for other in row[2:])
    # Intro numbers.
    probing = ExplicitProbeScheme(probe_period_s=30.0, mean_lifetime_s=7200.0)
    assert probing.pointers_for_bandwidth(10_000.0) == 600.0
    assert 1.0 - probing.useful_message_fraction() > 0.995
