"""Figure 10: average peer-list error rate vs system scale (§5.2).

Paper claims: the error rate rises with scale (longer multicasts revise
errors less timely) *"but the change is very slight"* — the multicast
depth grows only as log2 N.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig10_scalability_error
from repro.experiments.report import print_table
from repro.experiments.scenario import common_params, scale_sweep


def test_bench_fig10(benchmark):
    rows = run_once(
        benchmark, fig10_scalability_error, scale_sweep(), common_params()
    )
    print_table(
        "Figure 10 — mean peer-list error rate vs scale",
        ["N", "mean error rate"],
        [[int(n), e] for n, e in rows],
    )
    errs = [e for _, e in rows]
    assert errs[-1] < 5 * max(errs[0], 1e-5), "the change must be slight"
    assert all(e < 0.02 for e in errs)
