"""Replicated common-run metrics with confidence intervals.

Single-run figures carry workload noise; this bench replicates the
common scenario across seeds and reports each headline metric with a
95% Student-t interval — the form a production evaluation would publish.
"""

from benchmarks.conftest import run_once
from repro.experiments.report import print_table
from repro.experiments.scalable import ScalableParams
from repro.experiments.scenario import full_scale
from repro.experiments.stats import replicate


def test_bench_replicated_common(benchmark):
    if full_scale():
        params = ScalableParams(n_target=100_000, duration_s=1200.0, warmup_s=400.0)
        seeds = [1, 2, 3]
    else:
        params = ScalableParams(n_target=5_000, duration_s=400.0, warmup_s=150.0)
        seeds = [1, 2, 3, 4]

    summaries = run_once(benchmark, replicate, params, seeds)
    print_table(
        f"replicated common run (N={params.n_target:,}, {len(seeds)} seeds, 95% CI)",
        ["metric", "mean", "std", "ci low", "ci high"],
        [
            [s.name, s.mean, s.std, s.ci_low, s.ci_high]
            for s in summaries.values()
        ],
    )
    err = summaries["mean_error_rate"]
    assert err.ci_low > 0.0
    assert err.ci_high < 0.02
    frac0 = summaries["frac_level0"]
    assert frac0.ci_low > 0.5  # figure 5's claim holds across seeds
