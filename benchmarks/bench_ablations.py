"""Ablation benches for the design choices DESIGN.md calls out.

Each table flips one design decision and shows the predicted consequence:

* probe interval ↔ error rate (detection latency dominates staleness);
* strongest-first multicast targets ↔ audience coverage;
* controller hysteresis width ↔ level flapping;
* threshold floor ↔ deepest populated level.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablation import (
    ablate_hysteresis,
    ablate_probe_interval,
    ablate_target_policy,
    ablate_threshold_floor,
)
from repro.experiments.report import print_table
from repro.experiments.scalable import ScalableParams

FAST = ScalableParams(n_target=4000, duration_s=400.0, warmup_s=150.0, seed=5)


def test_bench_ablation_probe_interval(benchmark):
    rows = run_once(benchmark, ablate_probe_interval, [5.0, 15.0, 30.0, 60.0, 120.0], FAST)
    print_table(
        "ablation — probe interval vs mean error rate",
        ["probe interval (s)", "mean error rate"],
        rows,
    )
    errs = [e for _, e in rows]
    assert errs[-1] > errs[0], "slower probing must raise staleness"


def test_bench_ablation_target_policy(benchmark):
    def sweep():
        return [
            {**ablate_target_policy(n_members=1024, id_bits=24, seed=s), "seed": s}
            for s in range(5)
        ]

    rows = run_once(benchmark, sweep)
    print_table(
        "ablation — multicast target choice vs audience coverage",
        ["seed", "strongest-first", "random"],
        [[r["seed"], r["strongest_coverage"], r["random_coverage"]] for r in rows],
    )
    assert all(r["strongest_coverage"] == 1.0 for r in rows)
    assert min(r["random_coverage"] for r in rows) < 1.0


def test_bench_ablation_hysteresis(benchmark):
    rows = run_once(benchmark, ablate_hysteresis, [0.3, 0.5, 0.7, 0.9, 0.98])
    print_table(
        "ablation — raise fraction (dead-zone width) vs level flaps",
        ["raise fraction", "level changes in 500 noisy ticks"],
        rows,
    )
    by_frac = dict(rows)
    assert by_frac[0.98] > by_frac[0.5] >= by_frac[0.3]


def test_bench_ablation_warmup(benchmark):
    from repro.experiments.ablation import ablate_warmup

    rows = run_once(benchmark, ablate_warmup, [0, 1, 2, 3])
    print_table(
        "ablation — §4.3 warm-up: start fast vs reach the full list",
        ["extra levels", "join done (s)", "full list (s)", "initial download (ptrs)"],
        rows,
    )
    full_times = [t for _, _, t, _ in rows]
    assert full_times[-1] > full_times[0]  # warm-up delays the full list
    downloads = [d for _, _, _, d in rows]
    assert downloads[-1] < downloads[0]  # ...but shrinks the initial download


def test_bench_ablation_bandwidth_digitization(benchmark):
    from repro.experiments.ablation import ablate_bandwidth_digitization

    rows = run_once(benchmark, ablate_bandwidth_digitization, [-0.1, -0.05, 0.0, 0.05, 0.1])
    print_table(
        "ablation — bandwidth-CDF digitization shift vs level-0 share "
        "(robustness of figure 5)",
        ["weight shift (cable -> fast)", "fraction at level 0"],
        rows,
    )
    fracs = [f for _, f in rows]
    assert fracs == sorted(fracs)  # monotone in the shift
    assert fracs[0] > 0.45  # the claim survives the pessimistic end


def test_bench_ablation_lifetime_shape(benchmark):
    from repro.experiments.ablation import ablate_lifetime_shape

    rows = run_once(benchmark, ablate_lifetime_shape, FAST)
    print_table(
        "ablation — lifetime distribution shape at fixed mean (135 min)",
        ["distribution", "mean error rate", "populated levels"],
        rows,
    )
    levels = [n for _, _, n in rows]
    assert max(levels) - min(levels) <= 1


def test_bench_ablation_threshold_floor(benchmark):
    rows = run_once(
        benchmark, ablate_threshold_floor, [2000.0, 500.0, 125.0], FAST
    )
    print_table(
        "ablation — threshold floor vs deepest populated level",
        ["floor (bps)", "deepest level"],
        rows,
    )
    depths = [d for _, d in rows]
    assert depths[-1] >= depths[0]
