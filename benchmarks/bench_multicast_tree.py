"""§4.2 multicast properties: depth ≈ log2 N, root out-degree ≈ log2 N.

Regenerates the paper's protocol-level claims (figure 4's properties 2-3
and the §5.1 delay estimate of ``log2 100000 ≈ 16.6`` steps), measured on
exact disseminations over growing audiences.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.report import print_table
from repro.experiments.scalable import binomial_broadcast


def measure(sizes, bits=40, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for n in sizes:
        ids = np.unique(rng.integers(0, 1 << bits, size=n, dtype=np.uint64))
        levels = rng.integers(0, 4, size=ids.size).astype(np.int32)
        root = int(np.lexsort((ids, levels))[0])
        levels[root] = 0
        depths, senders = binomial_broadcast(ids, levels, root, bits)
        rows.append(
            [
                int(ids.size),
                float(np.log2(ids.size)),
                int(depths.max()),
                float(depths.mean()),
                int(senders[root]),
            ]
        )
    return rows


def test_bench_multicast_tree(benchmark):
    sizes = [1000, 10_000, 100_000]
    rows = run_once(benchmark, measure, sizes)
    print_table(
        "§4.2 multicast tree — steps and out-degree vs audience size",
        ["audience", "log2 N", "max depth", "mean depth", "root out-degree"],
        rows,
    )
    for n, log2n, max_depth, _, out_deg in rows:
        assert max_depth <= 2.0 * log2n, "reaches audience in ~log2 N steps"
        assert 0.4 * log2n <= out_deg <= 2.0 * log2n, "root out-degree ~log2 N"
    # §5.1: at the 100,000 scale, ~16.6 steps.
    assert abs(rows[-1][1] - 16.6) < 0.1
