"""Protocol-health benchmark and the bench-trajectory seed matrix.

Two jobs share this module:

* pytest-benchmark timings for the health pipeline itself — a full
  chaos-run-to-verdict cell, and the pure ``analyze_spans`` throughput
  on an already-collected span log (the part a post-hoc ``repro obs
  report`` pays for);
* the fixed ``MATRIX`` of ``(scenario, n_nodes, seed)`` cells that
  ``scripts/bench_trajectory.py`` replays to regenerate the committed
  ``BENCH_health.json`` trajectory point.  Every cell is a pure
  function of its tuple, so the trajectory file is byte-identical
  across regenerations — a diff in review means protocol behaviour
  actually moved.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from repro.chaos.runner import ChaosRunner
from repro.chaos.scenarios import SCENARIOS
from repro.obs.analyze import analyze_spans
from repro.obs.health import HealthSpec, evaluate, metrics_signals

from .conftest import run_once

#: The trajectory seed matrix: small enough to regenerate in about a
#: minute, wide enough to cover crash/partition/loss/recovery paths.
MATRIX: Tuple[Tuple[str, int, int], ...] = (
    ("smoke", 40, 0),
    ("smoke", 40, 1),
    ("recovery-stress", 100, 0),
    ("churn-partition", 120, 0),
)

TRAJECTORY_VERSION = 1
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_health.json",
)


def run_cell(scenario_name: str, n_nodes: int, seed: int) -> Dict[str, Any]:
    """One matrix cell: chaos run -> analytics -> SLO verdicts."""
    scenario = SCENARIOS[scenario_name]
    config = scenario.make_config()
    spec = HealthSpec.default(config, n_nodes)
    result = ChaosRunner(
        scenario, n_nodes=n_nodes, seed=seed, health_spec=spec
    ).run()
    report = analyze_spans(result.spans)
    signals = dict(report.signals())
    signals.update(
        metrics_signals(
            result.metrics,
            config,
            meta={"mean_error_rate": result.mean_error_rate},
        )
    )
    verdicts = evaluate(spec, signals, now=result.duration)
    return {
        "scenario": scenario_name,
        "n_nodes": n_nodes,
        "seed": seed,
        "duration": result.duration,
        "live_nodes": result.live_nodes,
        "faults_injected": result.faults_injected,
        "violations": len(result.violations),
        "healthy": result.healthy and all(v.ok for v in verdicts),
        "signals": dict(sorted(signals.items())),
        "breaches": sorted(v.slo for v in verdicts if not v.ok),
    }


def build_trajectory(
    matrix: Tuple[Tuple[str, int, int], ...] = MATRIX,
) -> Dict[str, Any]:
    """The full trajectory document ``scripts/bench_trajectory.py`` writes."""
    cells: List[Dict[str, Any]] = [run_cell(*cell) for cell in matrix]
    return {
        "schema_version": TRAJECTORY_VERSION,
        "matrix": cells,
        "summary": {
            "cells": len(cells),
            "healthy_cells": sum(1 for c in cells if c["healthy"]),
            "healthy": all(c["healthy"] for c in cells),
        },
    }


def test_bench_health_cell(benchmark):
    """End-to-end cost of one trajectory cell (run + analyze + judge)."""
    cell = run_once(benchmark, run_cell, "smoke", 40, 0)
    assert cell["healthy"], cell["breaches"]
    assert cell["signals"]["mcast.tree_completeness"] >= 0.99


def test_bench_analyze_spans_throughput(benchmark):
    """Pure analytics throughput on a collected chaos span log."""
    scenario = SCENARIOS["smoke"]
    result = ChaosRunner(scenario, n_nodes=40, seed=0, observe=True).run()
    spans = result.spans
    report = benchmark(analyze_spans, spans)
    assert report.spans_total == len(spans)
    per_span = benchmark.stats.stats.min / max(1, len(spans))
    print(f"\nanalyze: {len(spans)} spans, {per_span * 1e6:.1f} us/span")


def test_committed_trajectory_is_current_schema_and_healthy():
    """The checked-in BENCH_health.json parses and reports healthy."""
    with open(TRAJECTORY_PATH, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == TRAJECTORY_VERSION
    assert doc["summary"]["cells"] == len(MATRIX)
    assert doc["summary"]["healthy"] is True
