"""Figure 7: peer-list error rate per level.

Paper claims: every level under 0.5%; the §5.1 back-of-envelope is
``error ≈ 25s staleness / 135min lifetime ≈ 0.3%``.  Our accounting also
charges the §4.1 failure-detection delay on leaves (the paper's bound
considers the multicast only), so the reproduced band is <1%.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig7_error_rates, run_scenario
from repro.experiments.report import print_table
from repro.experiments.scenario import common_params


def test_bench_fig07(benchmark):
    params = common_params()
    rows = run_once(benchmark, fig7_error_rates, params)
    result = run_scenario(params)  # cached
    print_table(
        "Figure 7 — peer-list error rate by level (with decomposition)",
        ["level", "error rate", "stale (leaves)", "absent (joins)"],
        [
            [r.level, r.error_rate, r.stale_rate, r.absent_rate]
            for r in result.rows
            if r.population > 0
        ],
    )
    for lvl, err in rows:
        assert err < 0.01, f"level {lvl} error {err:.4f} out of band"
    # Leave staleness dominates (it carries the detection delay the
    # paper's bound omits).
    for r in result.rows:
        if r.population > 0:
            assert r.stale_rate > r.absent_rate
