"""Micro-benchmarks of the substrate hot paths.

These are conventional timing benches (many rounds) rather than one-shot
simulation runs: the event queue, the peer-list container, and the
vectorized dissemination are the three structures everything else's
runtime hangs off.
"""

import numpy as np

from repro.core.nodeid import NodeId
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer
from repro.experiments.scalable import binomial_broadcast
from repro.sim.engine import Simulator


def test_bench_event_queue_heap(benchmark):
    rng = np.random.default_rng(0)
    delays = rng.exponential(1.0, size=5000)

    def run():
        sim = Simulator(queue="heap")
        for d in delays:
            sim.schedule(float(d), lambda: None)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 5000


def test_bench_event_queue_calendar(benchmark):
    rng = np.random.default_rng(0)
    delays = rng.exponential(1.0, size=5000)

    def run():
        sim = Simulator(queue="calendar")
        for d in delays:
            sim.schedule(float(d), lambda: None)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 5000


def test_bench_peerlist_churn(benchmark):
    """Insert/remove cycles on a 2000-entry peer list."""
    rng = np.random.default_rng(1)
    owner = NodeId(0, 32)
    values = rng.choice(1 << 32, size=2000, replace=False)
    pointers = [Pointer(NodeId(int(v), 32), int(v), 0) for v in values]

    def run():
        pl = PeerList(owner, 0)
        for p in pointers:
            pl.add(p)
        for p in pointers[::2]:
            pl.remove(p.node_id)
        return len(pl)

    assert benchmark(run) == 1000


def test_bench_ring_successor(benchmark):
    owner = NodeId(123, 32)
    pl = PeerList(owner, 0)
    rng = np.random.default_rng(2)
    for v in rng.choice(1 << 32, size=2000, replace=False):
        pl.add(Pointer(NodeId(int(v), 32), int(v), 0))

    result = benchmark(pl.ring_successor, owner)
    assert result is not None


def test_bench_binomial_broadcast_10k(benchmark):
    rng = np.random.default_rng(3)
    ids = np.unique(rng.integers(0, 1 << 40, size=10_000, dtype=np.uint64))
    levels = np.zeros(ids.size, dtype=np.int32)

    depths, _ = benchmark(binomial_broadcast, ids, levels, 0, 40)
    assert (depths >= 0).all()
