"""Figure 6: peer-list size per level.

Paper claims: sizes follow ``N / 2^l``; within a level the maximum and
minimum are *"hard to be distinguished"* (uniform ids).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import fig6_peer_list_sizes
from repro.experiments.report import print_table
from repro.experiments.scenario import common_params


def test_bench_fig06(benchmark):
    rows = run_once(benchmark, fig6_peer_list_sizes, common_params())
    print_table(
        "Figure 6 — peer-list size by level",
        ["level", "mean", "min", "max"],
        rows,
    )
    by_level = {lvl: mean for lvl, mean, _, _ in rows}
    levels = sorted(by_level)
    for a, b in zip(levels, levels[1:]):
        if b == a + 1:
            assert by_level[a] / max(by_level[b], 1) == pytest.approx(2.0, rel=0.4)
