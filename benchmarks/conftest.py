"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables/figures and prints the
rows alongside pytest-benchmark's timing.  Simulation benches run once
(``rounds=1``) — we are measuring the *system under simulation*, not
timing jitter — while micro-benches use normal benchmark repetition.

Set ``REPRO_FULL=1`` to run the figure benches at the paper's scale
(100,000 nodes; minutes per figure instead of seconds).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
