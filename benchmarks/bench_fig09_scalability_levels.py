"""Figure 9: node distribution vs system scale (§5.2).

Paper claims: in a 5,000-node PeerWindow, (essentially) all nodes run at
level 0; as the system grows, more levels appear and more nodes work at
lower levels, because weak nodes cannot afford high levels in a large
system.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig9_scalability_levels
from repro.experiments.report import print_table
from repro.experiments.scenario import common_params, scale_sweep


def test_bench_fig09(benchmark):
    points = run_once(
        benchmark, fig9_scalability_levels, scale_sweep(), common_params()
    )
    table = []
    for p in points:
        fr = dict(p.level_fractions)
        table.append(
            [int(p.x), p.n_levels]
            + [round(fr.get(l, 0.0), 3) for l in range(8)]
        )
    print_table(
        "Figure 9 — level fractions vs system scale",
        ["N", "levels"] + [f"L{l}" for l in range(8)],
        table,
    )
    frac0 = [dict(p.level_fractions).get(0, 0.0) for p in points]
    assert frac0[0] > frac0[-1], "level-0 share shrinks with scale"
    assert points[-1].n_levels >= points[0].n_levels, "levels multiply with scale"
