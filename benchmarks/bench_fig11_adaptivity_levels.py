"""Figure 11: node distribution vs Lifetime_Rate (§5.3).

Paper claims: at Lifetime_Rate = 0.1 (13.5-minute average lifetimes)
about 10 levels appear and only ~15% of nodes hold level 0; as lifetimes
stretch, the population collapses back toward level 0 (peer lists
"automatically expand when the system turns stable").
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig11_adaptivity_levels
from repro.experiments.report import print_table
from repro.experiments.scenario import common_params, lifetime_rates


def test_bench_fig11(benchmark):
    points = run_once(
        benchmark, fig11_adaptivity_levels, lifetime_rates(), common_params()
    )
    table = []
    for p in points:
        fr = dict(p.level_fractions)
        table.append(
            [p.x, p.n_levels] + [round(fr.get(l, 0.0), 3) for l in range(10)]
        )
    print_table(
        "Figure 11 — level fractions vs Lifetime_Rate",
        ["rate", "levels"] + [f"L{l}" for l in range(10)],
        table,
    )
    frac0 = {p.x: dict(p.level_fractions).get(0, 0.0) for p in points}
    rates = sorted(frac0)
    assert frac0[rates[0]] < frac0[rates[-1]], "short lifetimes push nodes deeper"
    n_levels = {p.x: p.n_levels for p in points}
    assert n_levels[rates[0]] > n_levels[rates[-1]]
