"""§2 analytic table: pointers collectable per bandwidth budget.

Regenerates the paper's worked example — *"a very weak node (e.g., a
modem-linked node) would spend only 10% of its bandwidth, about 5kbps, on
PeerWindow.  Then, it can collect about p = 6000 pointers"* — and the
abstract's headline (*"the cost of collecting 1,000 pointers being less
than 1kbps"*), across a sweep of budgets.
"""

from benchmarks.conftest import run_once
from repro.core.analytic import CostModel
from repro.experiments.report import print_table


def compute_table():
    model = CostModel(
        mean_lifetime_s=3600.0, changes_per_lifetime=3.0, redundancy=1.0, message_bits=1000.0
    )
    budgets = [500.0, 1000.0, 5000.0, 10_000.0, 100_000.0]
    rows = [
        [f"{w:,.0f} bps", model.pointers_for_bandwidth(w)]
        for w in budgets
    ]
    return model, rows


def test_bench_analytic_table(benchmark):
    model, rows = run_once(benchmark, compute_table)
    print_table(
        "§2 analytic model (L=3600s, m=3, r=1, i=1000b)",
        ["budget", "pointers"],
        rows,
    )
    print_table(
        "headline numbers",
        ["quantity", "value"],
        [
            ["bps per 1000 pointers", model.bandwidth_per_1000_pointers()],
            ["pointers at 5 kbps (paper: ~6000)", model.pointers_for_bandwidth(5000.0)],
        ],
    )
    assert model.pointers_for_bandwidth(5000.0) == 6000.0
    assert model.bandwidth_per_1000_pointers() < 1000.0
